#include "carbon/core/experiment.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>

#include "carbon/baselines/nested_ga.hpp"
#include "carbon/cover/generator.hpp"
#include "common/temp_dir.hpp"

namespace carbon::core {
namespace {

bcpop::Instance small_instance() {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = 25;
  cfg.num_services = 3;
  cfg.seed = 31;
  return bcpop::Instance(cover::generate(cfg), 3);
}

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.runs = 3;
  cfg.population_size = 10;
  cfg.archive_size = 10;
  cfg.ul_eval_budget = 80;
  cfg.ll_eval_budget = 300;
  cfg.heuristic_sample_size = 2;
  cfg.threads = 2;
  return cfg;
}

TEST(Experiment, RunCellAggregatesAllRuns) {
  const bcpop::Instance inst = small_instance();
  const CellResult cell = run_cell(inst, Algorithm::kCarbon, tiny_config());
  EXPECT_EQ(cell.runs.size(), 3u);
  EXPECT_EQ(cell.gap.n, 3u);
  EXPECT_EQ(cell.ul_objective.n, 3u);
  EXPECT_GT(cell.wall_seconds, 0.0);
  EXPECT_GE(cell.gap.min, 0.0);
  EXPECT_LE(cell.gap.min, cell.gap.max);
}

TEST(Experiment, ParallelMatchesSequential) {
  const bcpop::Instance inst = small_instance();
  ExperimentConfig cfg = tiny_config();
  cfg.threads = 1;
  const CellResult seq = run_cell(inst, Algorithm::kCarbon, cfg);
  cfg.threads = 3;
  const CellResult par = run_cell(inst, Algorithm::kCarbon, cfg);
  ASSERT_EQ(seq.runs.size(), par.runs.size());
  for (std::size_t r = 0; r < seq.runs.size(); ++r) {
    EXPECT_DOUBLE_EQ(seq.runs[r].best_gap, par.runs[r].best_gap);
    EXPECT_DOUBLE_EQ(seq.runs[r].best_ul_objective,
                     par.runs[r].best_ul_objective);
  }
}

TEST(Experiment, AllAlgorithmsDispatch) {
  const bcpop::Instance inst = small_instance();
  ExperimentConfig cfg = tiny_config();
  cfg.runs = 1;
  for (const Algorithm a :
       {Algorithm::kCarbon, Algorithm::kCobra, Algorithm::kNestedGa,
        Algorithm::kCarbonValueFitness}) {
    const CellResult cell = run_cell(inst, a, cfg);
    EXPECT_EQ(cell.algorithm, a);
    EXPECT_EQ(cell.runs.size(), 1u);
    EXPECT_TRUE(cell.runs[0].best_evaluation.ll_feasible)
        << to_string(a);
  }
}

TEST(Experiment, ZeroRunsThrows) {
  const bcpop::Instance inst = small_instance();
  ExperimentConfig cfg = tiny_config();
  cfg.runs = 0;
  EXPECT_THROW((void)run_cell(inst, Algorithm::kCarbon, cfg),
               std::invalid_argument);
}

TEST(Experiment, PaperScaleMatchesTableII) {
  const ExperimentConfig cfg = ExperimentConfig::paper_scale();
  EXPECT_EQ(cfg.runs, 30u);
  EXPECT_EQ(cfg.population_size, 100u);
  EXPECT_EQ(cfg.archive_size, 100u);
  EXPECT_EQ(cfg.ul_eval_budget, 50'000);
  EXPECT_EQ(cfg.ll_eval_budget, 50'000);
}

TEST(Experiment, AlgorithmNames) {
  EXPECT_STREQ(to_string(Algorithm::kCarbon), "CARBON");
  EXPECT_STREQ(to_string(Algorithm::kCobra), "COBRA");
  EXPECT_STREQ(to_string(Algorithm::kNestedGa), "NESTED-GA");
  EXPECT_STREQ(to_string(Algorithm::kCarbonValueFitness), "CARBON-VALUE");
}

TEST(Experiment, ToStringThrowsOnOutOfEnumValue) {
  // A corrupted or miscast integer must fail loudly, not label results "?".
  EXPECT_THROW((void)to_string(static_cast<Algorithm>(999)),
               std::invalid_argument);
  EXPECT_THROW((void)to_string(static_cast<Algorithm>(-1)),
               std::invalid_argument);
}

TEST(Experiment, CheckpointPathNamesAlgorithmAndRun) {
  EXPECT_EQ(experiment_checkpoint_path("/tmp/ck", Algorithm::kCarbon, 0),
            "/tmp/ck/carbon-run0.ckpt");
  EXPECT_EQ(experiment_checkpoint_path("/tmp/ck", Algorithm::kCobra, 12),
            "/tmp/ck/cobra-run12.ckpt");
  EXPECT_EQ(experiment_checkpoint_path("d", Algorithm::kNestedGa, 3),
            "d/nested_ga-run3.ckpt");
}

TEST(Experiment, CheckpointedCellMatchesPlainCell) {
  // Checkpoint writes must not perturb the trajectory, and a re-run that
  // resumes from the leftover final checkpoints must aggregate the same
  // numbers as a clean cell (crash-recovery of an interrupted sweep).
  const bcpop::Instance inst = small_instance();
  for (const Algorithm algo : {Algorithm::kCarbon, Algorithm::kCobra}) {
    SCOPED_TRACE(to_string(algo));
    ExperimentConfig cfg = tiny_config();
    cfg.runs = 2;
    const CellResult plain = run_cell(inst, algo, cfg);

    cfg.checkpoint_every = 1;
    // Unique per-test dir: the fixed carbon-run0.ckpt names inside would
    // collide across parallel ctest shards in the shared gtest TempDir.
    cfg.checkpoint_dir = carbon::test::test_temp_dir(to_string(algo));
    const CellResult checkpointed = run_cell(inst, algo, cfg);
    // The per-run files exist now, so this second call resumes every run
    // from its final checkpoint.
    const CellResult resumed = run_cell(inst, algo, cfg);

    ASSERT_EQ(plain.runs.size(), checkpointed.runs.size());
    ASSERT_EQ(plain.runs.size(), resumed.runs.size());
    for (std::size_t r = 0; r < plain.runs.size(); ++r) {
      SCOPED_TRACE("run " + std::to_string(r));
      EXPECT_EQ(plain.runs[r].best_gap, checkpointed.runs[r].best_gap);
      EXPECT_EQ(plain.runs[r].best_ul_objective,
                checkpointed.runs[r].best_ul_objective);
      EXPECT_EQ(plain.runs[r].best_gap, resumed.runs[r].best_gap);
      EXPECT_EQ(plain.runs[r].best_ul_objective,
                resumed.runs[r].best_ul_objective);
    }
    for (std::size_t r = 0; r < cfg.runs; ++r) {
      std::remove(
          experiment_checkpoint_path(cfg.checkpoint_dir, algo, r).c_str());
    }
  }
}

TEST(Experiment, NegativeCheckpointEveryThrows) {
  const bcpop::Instance inst = small_instance();
  ExperimentConfig cfg = tiny_config();
  cfg.checkpoint_every = -1;
  EXPECT_THROW((void)run_cell(inst, Algorithm::kCarbon, cfg),
               std::invalid_argument);
}

TEST(Experiment, AverageConvergenceShapes) {
  const bcpop::Instance inst = small_instance();
  ExperimentConfig cfg = tiny_config();
  cfg.record_convergence = true;
  const CellResult cell = run_cell(inst, Algorithm::kCarbon, cfg);
  const auto avg = average_convergence(cell.runs);
  ASSERT_FALSE(avg.empty());
  // Length = shortest run trace.
  std::size_t min_len = cell.runs[0].convergence.size();
  for (const auto& r : cell.runs) {
    min_len = std::min(min_len, r.convergence.size());
  }
  EXPECT_EQ(avg.size(), min_len);
  // Averaged best-so-far stays monotone (average of monotone series).
  for (std::size_t g = 1; g < avg.size(); ++g) {
    ASSERT_GE(avg[g].best_ul_so_far, avg[g - 1].best_ul_so_far - 1e-9);
    ASSERT_LE(avg[g].best_gap_so_far, avg[g - 1].best_gap_so_far + 1e-9);
  }
}

TEST(Experiment, AverageConvergenceEmptyInputs) {
  EXPECT_TRUE(average_convergence({}).empty());
  std::vector<RunResult> no_trace(2);
  EXPECT_TRUE(average_convergence(no_trace).empty());
}

TEST(NestedGa, SmokeAndDeterminism) {
  const bcpop::Instance inst = small_instance();
  baselines::NestedGaConfig cfg;
  cfg.population_size = 10;
  cfg.archive_size = 10;
  cfg.ul_eval_budget = 100;
  cfg.ll_eval_budget = 100;
  cfg.seed = 8;
  const core::RunResult a = baselines::NestedGaSolver(inst, cfg).run();
  const core::RunResult b = baselines::NestedGaSolver(inst, cfg).run();
  EXPECT_TRUE(a.best_evaluation.ll_feasible);
  EXPECT_DOUBLE_EQ(a.best_ul_objective, b.best_ul_objective);
  EXPECT_GT(a.generations, 0);
}

TEST(NestedGa, InvalidConfigThrows) {
  const bcpop::Instance inst = small_instance();
  baselines::NestedGaConfig cfg;
  cfg.population_size = 1;
  EXPECT_THROW(baselines::NestedGaSolver(inst, cfg), std::invalid_argument);
}

}  // namespace
}  // namespace carbon::core

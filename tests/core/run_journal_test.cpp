#include "carbon/obs/run_journal.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "carbon/obs/json.hpp"

namespace carbon::obs {
namespace {

std::vector<JsonValue> parse_lines(const std::string& text) {
  std::vector<JsonValue> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) out.push_back(parse_json(line));
  }
  return out;
}

GenerationRecord sample_record(int generation) {
  GenerationRecord rec;
  rec.generation = generation;
  rec.phase = "carbon";
  rec.best_ul = 743.25;
  rec.mean_ul = 100.125;
  rec.std_ul = 2.5;
  rec.best_gap = 5.75;
  rec.mean_gap = 30.5;
  rec.std_gap = 1.25;
  rec.best_ul_so_far = 743.25;
  rec.best_gap_so_far = 5.75;
  rec.archive_size = 10;
  rec.ll_archive_size = 12;
  rec.ul_evals = 20;
  rec.ll_evals = 120;
  rec.backend.relaxation_cache_hits = 40;
  rec.backend.relaxation_cache_misses = 10;
  rec.backend.relaxation_cache_evictions = 3;
  rec.backend.heuristic_dedup_hits = 7;
  return rec;
}

TEST(RunJournal, EmitsStartGenerationsAndSummaryAsParsableJsonl) {
  std::ostringstream sink;
  RunJournal journal(sink);
  journal.begin_run("carbon", 42, 4, true);
  journal.write_generation(sample_record(0));
  journal.write_generation(sample_record(1));
  RunSummary summary;
  summary.generations = 2;
  summary.ul_evals = 20;
  summary.ll_evals = 120;
  summary.best_ul = 743.25;
  summary.best_gap = 5.75;
  journal.finish_run(summary);

  EXPECT_EQ(journal.records_written(), 4);
  const auto records = parse_lines(sink.str());
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].at("type").as_string(), "run_start");
  EXPECT_EQ(records[1].at("type").as_string(), "generation");
  EXPECT_EQ(records[2].at("type").as_string(), "generation");
  EXPECT_EQ(records[3].at("type").as_string(), "summary");
  for (const auto& rec : records) {
    EXPECT_EQ(rec.at("algo").as_string(), "carbon");
  }
}

TEST(RunJournal, ResumeRecordCarriesTheRestoredState) {
  std::ostringstream sink;
  RunJournal journal(sink);
  journal.begin_run("carbon", 7, 1, false);
  ResumeRecord rec;
  rec.generation = 12;
  rec.ul_evals = 960;
  rec.ll_evals = 4800;
  rec.checkpoint_path = "/tmp/run3.ckpt";
  journal.write_resume(rec);

  const auto records = parse_lines(sink.str());
  ASSERT_EQ(records.size(), 2u);
  const JsonValue& resume = records[1];
  EXPECT_EQ(resume.at("type").as_string(), "resume");
  EXPECT_EQ(resume.at("algo").as_string(), "carbon");
  EXPECT_EQ(resume.at("generation").as_integer(), 12);
  EXPECT_EQ(resume.at("ul_evals").as_integer(), 960);
  EXPECT_EQ(resume.at("ll_evals").as_integer(), 4800);
  EXPECT_EQ(resume.at("from").as_string(), "/tmp/run3.ckpt");
}

TEST(RunJournal, RunStartEchoesTheConfig) {
  std::ostringstream sink;
  RunJournal journal(sink);
  journal.begin_run("cobra", 1234567890123ULL, 8, false);
  const auto records = parse_lines(sink.str());
  ASSERT_EQ(records.size(), 1u);
  const JsonValue& start = records[0];
  EXPECT_EQ(start.at("v").as_integer(), 1);
  EXPECT_EQ(start.at("algo").as_string(), "cobra");
  EXPECT_EQ(start.at("seed").as_integer(), 1234567890123LL);
  EXPECT_EQ(start.at("eval_threads").as_integer(), 8);
  EXPECT_FALSE(start.at("compiled_scoring").as_bool());
}

TEST(RunJournal, GenerationRecordRoundTripsEveryField) {
  std::ostringstream sink;
  RunJournal journal(sink);
  journal.begin_run("carbon", 1, 1, true);
  journal.write_generation(sample_record(3));
  const auto records = parse_lines(sink.str());
  ASSERT_EQ(records.size(), 2u);
  const JsonValue& g = records[1];
  EXPECT_EQ(g.at("generation").as_integer(), 3);
  EXPECT_EQ(g.at("phase").as_string(), "carbon");
  EXPECT_DOUBLE_EQ(g.at("best_ul").as_number(), 743.25);
  EXPECT_DOUBLE_EQ(g.at("mean_ul").as_number(), 100.125);
  EXPECT_DOUBLE_EQ(g.at("std_ul").as_number(), 2.5);
  EXPECT_DOUBLE_EQ(g.at("best_gap").as_number(), 5.75);
  EXPECT_DOUBLE_EQ(g.at("mean_gap").as_number(), 30.5);
  EXPECT_DOUBLE_EQ(g.at("std_gap").as_number(), 1.25);
  EXPECT_DOUBLE_EQ(g.at("best_ul_so_far").as_number(), 743.25);
  EXPECT_DOUBLE_EQ(g.at("best_gap_so_far").as_number(), 5.75);
  EXPECT_EQ(g.at("archive_size").as_integer(), 10);
  EXPECT_EQ(g.at("ll_archive_size").as_integer(), 12);
  EXPECT_EQ(g.at("ul_evals").as_integer(), 20);
  EXPECT_EQ(g.at("ll_evals").as_integer(), 120);
  const JsonValue& backend = g.at("backend");
  EXPECT_EQ(backend.at("relax_cache_hits").as_integer(), 40);
  EXPECT_EQ(backend.at("relax_cache_misses").as_integer(), 10);
  EXPECT_EQ(backend.at("relax_cache_evictions").as_integer(), 3);
  EXPECT_EQ(backend.at("dedup_hits").as_integer(), 7);
  // Without a registry the timings object is present but empty.
  EXPECT_TRUE(g.at("timings_s").is_object());
  EXPECT_TRUE(g.at("timings_s").object.empty());
}

TEST(RunJournal, TimingsCarryPerGenerationDeltasAndCumulativeSummary) {
  MetricsRegistry metrics;
  std::ostringstream sink;
  RunJournal journal(sink, &metrics);
  journal.begin_run("carbon", 1, 1, true);

  metrics.record_timer("time/ll_solve", 1.0);
  journal.write_generation(sample_record(0));
  metrics.record_timer("time/ll_solve", 0.5);
  journal.write_generation(sample_record(1));
  journal.finish_run(RunSummary{});

  const auto records = parse_lines(sink.str());
  ASSERT_EQ(records.size(), 4u);
  EXPECT_DOUBLE_EQ(
      records[1].at("timings_s").at("time/ll_solve").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(
      records[2].at("timings_s").at("time/ll_solve").as_number(), 0.5);
  // The summary totals the whole run.
  EXPECT_DOUBLE_EQ(
      records[3].at("timings_s").at("time/ll_solve").as_number(), 1.5);
  EXPECT_GE(records[3].at("wall_s").as_number(), 0.0);
}

TEST(RunJournal, TimingsExcludeActivityBeforeBeginRun) {
  MetricsRegistry metrics;
  metrics.record_timer("time/ll_solve", 100.0);  // previous run's cost
  std::ostringstream sink;
  RunJournal journal(sink, &metrics);
  journal.begin_run("carbon", 1, 1, true);
  metrics.record_timer("time/ll_solve", 0.25);
  journal.write_generation(sample_record(0));
  RunSummary summary;
  journal.finish_run(summary);

  const auto records = parse_lines(sink.str());
  ASSERT_EQ(records.size(), 3u);
  EXPECT_DOUBLE_EQ(
      records[1].at("timings_s").at("time/ll_solve").as_number(), 0.25);
  EXPECT_DOUBLE_EQ(
      records[2].at("timings_s").at("time/ll_solve").as_number(), 0.25);
}

TEST(RunJournal, NonFiniteValuesBecomeNull) {
  std::ostringstream sink;
  RunJournal journal(sink);
  journal.begin_run("carbon", 1, 1, true);
  GenerationRecord rec = sample_record(0);
  rec.best_ul = -std::numeric_limits<double>::infinity();
  rec.mean_gap = std::numeric_limits<double>::quiet_NaN();
  journal.write_generation(rec);
  const auto records = parse_lines(sink.str());
  ASSERT_EQ(records.size(), 2u);
  EXPECT_TRUE(records[1].at("best_ul").is_null());
  EXPECT_TRUE(records[1].at("mean_gap").is_null());
  EXPECT_DOUBLE_EQ(records[1].at("best_gap").as_number(), 5.75);
}

TEST(RunJournal, ThrowsWhenTheFileCannotBeOpened) {
  EXPECT_THROW(RunJournal("/nonexistent-dir/journal.jsonl"),
               std::runtime_error);
}

TEST(RunJournal, DoublesRoundTripAtFullPrecision) {
  std::ostringstream sink;
  RunJournal journal(sink);
  journal.begin_run("carbon", 1, 1, true);
  GenerationRecord rec = sample_record(0);
  rec.best_ul = 742.32863999633457;  // not exactly representable in decimal
  rec.mean_gap = 1.0 / 3.0;
  journal.write_generation(rec);
  const auto records = parse_lines(sink.str());
  EXPECT_EQ(records[1].at("best_ul").as_number(), 742.32863999633457);
  EXPECT_EQ(records[1].at("mean_gap").as_number(), 1.0 / 3.0);
}

// ---- JSON layer ----------------------------------------------------------

TEST(Json, ParsesEscapesAndUnicode) {
  const JsonValue v = parse_json(
      R"({"s":"a\"b\\c\n\tA","n":-1.5e3,"t":true,"f":false,"z":null})");
  EXPECT_EQ(v.at("s").as_string(), "a\"b\\c\n\tA");
  EXPECT_DOUBLE_EQ(v.at("n").as_number(), -1500.0);
  EXPECT_TRUE(v.at("t").as_bool());
  EXPECT_FALSE(v.at("f").as_bool());
  EXPECT_TRUE(v.at("z").is_null());
}

TEST(Json, ParsesUnicodeEscapes) {
  const JsonValue v = parse_json("{\"u\":\"\\u0041\\u00e9\\u20ac\"}");
  EXPECT_EQ(v.at("u").as_string(), "A\xC3\xA9\xE2\x82\xAC");  // A, é, €
}

TEST(Json, ParsesNestedObjectsAndArrays) {
  const JsonValue v = parse_json(R"({"a":{"b":[1,2,{"c":3}]},"d":[]})");
  const JsonValue& arr = v.at("a").at("b");
  ASSERT_EQ(arr.array.size(), 3u);
  EXPECT_EQ(arr.array[0].as_integer(), 1);
  EXPECT_EQ(arr.array[2].at("c").as_integer(), 3);
  EXPECT_TRUE(v.at("d").array.empty());
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(parse_json(""), std::runtime_error);
  EXPECT_THROW(parse_json("{"), std::runtime_error);
  EXPECT_THROW(parse_json("{} trailing"), std::runtime_error);
  EXPECT_THROW(parse_json(R"({"a":})"), std::runtime_error);
  EXPECT_THROW(parse_json(R"({"a":1,})"), std::runtime_error);
  EXPECT_THROW(parse_json("nul"), std::runtime_error);
}

TEST(Json, AccessorsThrowOnKindMismatch) {
  const JsonValue v = parse_json(R"({"n":1})");
  EXPECT_THROW((void)v.at("n").as_string(), std::runtime_error);
  EXPECT_THROW((void)v.at("missing"), std::runtime_error);
  EXPECT_THROW((void)v.at("n").at("x"), std::runtime_error);
}

TEST(Json, WriterEscapesControlCharactersAndQuotes) {
  JsonObjectWriter w;
  w.field("k", std::string_view("a\"b\\c\x01", 6));
  const std::string line = w.finish();
  const JsonValue v = parse_json(line);
  EXPECT_EQ(v.at("k").as_string(), std::string("a\"b\\c\x01", 6));
}

}  // namespace
}  // namespace carbon::obs

// Unit tests for the checkpoint subsystem: bit-exact scalar encodings
// (including the values plain JSON cannot carry), GP-tree and RNG state
// round trips (differential fuzz against randomly generated inputs), full
// snapshot round trips through JSON and through the file layer, and strict
// rejection of malformed headers and bodies.

#include "carbon/core/checkpoint.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "carbon/common/rng.hpp"
#include "carbon/gp/generate.hpp"
#include "common/temp_dir.hpp"

namespace carbon::core {
namespace {

/// Unique-per-test file path (tests/common/temp_dir.hpp), so parallel ctest
/// shards never race on a shared "roundtrip.ckpt".
std::string temp_path(const std::string& name) {
  return carbon::test::test_temp_dir() + name;
}

// ---- Scalar encodings ------------------------------------------------------

TEST(CheckpointEncoding, U64RoundTripsFullRange) {
  EXPECT_EQ(encode_u64(0), "0000000000000000");
  EXPECT_EQ(encode_u64(0xFF), "00000000000000ff");
  EXPECT_EQ(encode_u64(~0ULL), "ffffffffffffffff");
  common::Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    // Full-range draws include values above 2^53, which the decimal JSON
    // number path (through double) could not round-trip.
    const std::uint64_t v = rng();
    EXPECT_EQ(decode_u64(encode_u64(v)), v);
  }
  EXPECT_EQ(decode_u64(encode_u64(9007199254740993ULL)),  // 2^53 + 1
            9007199254740993ULL);
}

TEST(CheckpointEncoding, U64DecodeIsStrict) {
  EXPECT_THROW((void)decode_u64(""), CheckpointError);
  EXPECT_THROW((void)decode_u64("123"), CheckpointError);              // short
  EXPECT_THROW((void)decode_u64("00000000000000zz"), CheckpointError);
  EXPECT_THROW((void)decode_u64("00000000000000ff "), CheckpointError);
  EXPECT_THROW((void)decode_u64("0x00000000000000f"), CheckpointError);
}

TEST(CheckpointEncoding, I64RoundTripsNegatives) {
  for (const long long v : {0LL, -1LL, 42LL, std::numeric_limits<long long>::min(),
                            std::numeric_limits<long long>::max()}) {
    EXPECT_EQ(decode_i64(encode_i64(v)), v);
  }
}

TEST(CheckpointEncoding, F64RoundTripsEveryBitPattern) {
  const double inf = std::numeric_limits<double>::infinity();
  const double qnan = std::numeric_limits<double>::quiet_NaN();
  for (const double v :
       {0.0, -0.0, 1.0, -1.5, 1e308, 5e-324, inf, -inf,
        std::numeric_limits<double>::denorm_min(),
        std::numeric_limits<double>::epsilon()}) {
    const double back = decode_f64(encode_f64(v));
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back),
              std::bit_cast<std::uint64_t>(v));
  }
  // NaN round-trips including its payload bits.
  const double nan_back = decode_f64(encode_f64(qnan));
  EXPECT_TRUE(std::isnan(nan_back));
  EXPECT_EQ(std::bit_cast<std::uint64_t>(nan_back),
            std::bit_cast<std::uint64_t>(qnan));
  // -0.0 stays signed.
  EXPECT_TRUE(std::signbit(decode_f64(encode_f64(-0.0))));
}

TEST(CheckpointEncoding, DoubleVectorsRoundTrip) {
  common::Rng rng(7);
  std::vector<double> values;
  for (int i = 0; i < 200; ++i) {
    values.push_back(rng.gauss() * std::pow(10.0, rng.uniform(-30.0, 30.0)));
  }
  values.push_back(std::numeric_limits<double>::infinity());
  values.push_back(-0.0);
  const std::vector<double> back = decode_doubles(encode_doubles(values));
  ASSERT_EQ(back.size(), values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back[i]),
              std::bit_cast<std::uint64_t>(values[i]));
  }
  EXPECT_TRUE(decode_doubles("").empty());
}

TEST(CheckpointEncoding, BytesRoundTrip) {
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 256; ++i) bytes.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(decode_bytes(encode_bytes(bytes)), bytes);
  EXPECT_TRUE(decode_bytes("").empty());
  EXPECT_THROW((void)decode_bytes("abc"), CheckpointError);   // odd length
  EXPECT_THROW((void)decode_bytes("zz"), CheckpointError);
}

// ---- GP tree round trip (differential fuzz) --------------------------------

TEST(CheckpointEncoding, TreeRoundTripFuzz) {
  common::Rng rng(2018);
  gp::GenerateConfig gen;
  for (int i = 0; i < 300; ++i) {
    gen.use_constants = (i % 2 == 1);  // exercise the c<hex16> token path too
    const gp::Tree tree = gp::generate_ramped(rng, gen);
    ASSERT_TRUE(tree.valid());
    const gp::Tree back = decode_tree(encode_tree(tree));
    EXPECT_EQ(back, tree) << "iteration " << i << ": "
                          << tree.to_string();
  }
}

TEST(CheckpointEncoding, TreeRoundTripPreservesConstantBits) {
  const gp::Tree tree = gp::Tree::apply(
      gp::OpCode::kDiv, gp::Tree::constant(0.1),  // 0.1 is not exact in binary
      gp::Tree::apply(gp::OpCode::kAdd,
                      gp::Tree::terminal(gp::Terminal::kCost),
                      gp::Tree::constant(-0.0)));
  const gp::Tree back = decode_tree(encode_tree(tree));
  EXPECT_EQ(back, tree);  // Node::operator== compares doubles exactly
}

TEST(CheckpointEncoding, TreeDecodeRejectsMalformedInput) {
  EXPECT_THROW((void)decode_tree(""), CheckpointError);          // no root
  EXPECT_THROW((void)decode_tree("+ t0"), CheckpointError);      // arity
  EXPECT_THROW((void)decode_tree("t0 t1"), CheckpointError);     // two roots
  EXPECT_THROW((void)decode_tree("t99"), CheckpointError);       // bad index
  EXPECT_THROW((void)decode_tree("t"), CheckpointError);
  EXPECT_THROW((void)decode_tree("q"), CheckpointError);         // unknown
  EXPECT_THROW((void)decode_tree("c123"), CheckpointError);      // short hex
}

// ---- RNG state -------------------------------------------------------------

TEST(CheckpointRng, SaveRestoreReproducesDrawSequence) {
  common::Rng rng(42);
  for (int i = 0; i < 37; ++i) (void)rng.uniform();  // advance arbitrarily

  const common::RngState saved = rng.state();
  std::vector<double> first;
  std::vector<std::uint64_t> first_ints;
  for (int i = 0; i < 100; ++i) {
    first.push_back(rng.uniform());
    first_ints.push_back(rng.below(1'000'000));
  }

  rng.set_state(saved);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.uniform(), first[i]);  // bitwise
    EXPECT_EQ(rng.below(1'000'000), first_ints[i]);
  }
}

TEST(CheckpointRng, SpawnStreamsSurviveSaveRestore) {
  // seed_mix is part of the state: spawn(i) after restore must match.
  common::Rng rng(7);
  (void)rng.uniform();
  const common::RngState saved = rng.state();
  common::Rng spawned_before = rng.spawn(3);
  const double want = spawned_before.uniform();

  common::Rng other(999);  // a different generator restored to the state
  other.set_state(saved);
  common::Rng spawned_after = other.spawn(3);
  EXPECT_EQ(spawned_after.uniform(), want);
}

// ---- Snapshot round trips --------------------------------------------------

bcpop::Evaluation make_eval(double base) {
  bcpop::Evaluation e;
  e.ll_feasible = true;
  e.ul_objective = base;
  e.ll_objective = base * 0.1;
  e.lower_bound = base * 0.09;
  e.gap_percent = 3.14;
  e.selection = {1, 0, 1, 1, 0};
  return e;
}

CarbonCheckpoint make_carbon_checkpoint() {
  common::Rng rng(11);
  CarbonCheckpoint ck;
  ck.seed = 0xDEADBEEFCAFEF00DULL;
  ck.progress.rng = rng.state();
  ck.progress.generation = 17;
  ck.progress.consumed_ul = 1234;
  ck.progress.consumed_ll = 56789;
  ck.progress.backend.relaxation_cache_hits = 10;
  ck.progress.backend.relaxation_cache_misses = 20;
  ck.progress.backend.relaxation_cache_evictions = 3;
  ck.progress.backend.heuristic_dedup_hits = 40;
  ck.progress.result.best_ul_objective = 123.456;
  ck.progress.result.best_gap = 0.75;
  ck.progress.result.best_pricing = {1.5, 2.5, 3.5};
  ck.progress.result.best_evaluation = make_eval(123.456);
  ck.progress.result.ul_evaluations = 1234;
  ck.progress.result.ll_evaluations = 56789;
  ck.progress.result.generations = 17;
  core::ConvergencePoint pt;
  pt.generation = 16;
  pt.ul_evaluations = 1200;
  pt.ll_evaluations = 50000;
  pt.best_ul_so_far = 123.456;
  pt.best_gap_so_far = 0.75;
  pt.current_best_ul = 120.0;
  pt.current_mean_gap = 1.25;
  pt.gp_unique_fraction = 0.875;
  pt.gp_mean_tree_size = 9.5;
  pt.phase = "carbon";
  ck.progress.result.convergence.push_back(pt);

  gp::GenerateConfig gen;
  for (int i = 0; i < 4; ++i) {
    ck.ul_pop.push_back({rng.uniform(), rng.uniform(), rng.uniform()});
    ck.gp_pop.push_back(gp::generate_ramped(rng, gen));
  }
  ck.solution_archive.push_back({{9.0, 8.0, 7.0}, make_eval(50.0), 50.0});
  ck.solution_archive.push_back({{6.0, 5.0, 4.0}, make_eval(40.0), 40.0});
  ck.heuristic_archive.push_back({gp::generate_ramped(rng, gen), 1.5});
  return ck;
}

CobraCheckpoint make_cobra_checkpoint() {
  common::Rng rng(13);
  CobraCheckpoint ck;
  ck.seed = 77;
  ck.progress.rng = rng.state();
  ck.progress.generation = 9;
  ck.progress.consumed_ul = 400;
  ck.progress.consumed_ll = 4000;
  ck.progress.result.best_ul_objective = 55.5;
  ck.progress.result.best_gap = 2.5;
  ck.progress.result.best_pricing = {4.0, 5.0};
  ck.progress.result.best_evaluation = make_eval(55.5);
  for (int i = 0; i < 3; ++i) {
    ck.ul_pop.push_back({rng.uniform(), rng.uniform()});
    ck.ll_pop.push_back({1, 0, 1, 0, 1});
  }
  ck.upper_archive.push_back({{1.0, 2.0}, {1, 1, 0, 0, 1}, make_eval(30.0), 30.0});
  ck.lower_archive.push_back({{3.0, 4.0}, {0, 0, 1, 1, 0}, make_eval(20.0), 2.0});
  ck.paired_pricing = {4.0, 5.0};
  ck.paired_basket = {1, 0, 0, 1, 1};
  return ck;
}

TEST(CheckpointSnapshot, CarbonJsonRoundTripIsExact) {
  const CarbonCheckpoint ck = make_carbon_checkpoint();
  const CarbonCheckpoint back =
      CarbonCheckpoint::from_json(obs::parse_json(ck.to_json()));
  EXPECT_EQ(back, ck);  // field-wise, doubles bitwise
}

TEST(CheckpointSnapshot, CarbonJsonRoundTripCarriesNonFiniteResultFields) {
  // A checkpoint written before the first feasible solution holds ±inf in
  // the best-so-far fields; the hex encoding must carry them (the JSON
  // number path would collapse them to null).
  CarbonCheckpoint ck = make_carbon_checkpoint();
  ck.progress.result.best_ul_objective =
      -std::numeric_limits<double>::infinity();
  ck.progress.result.best_gap = std::numeric_limits<double>::infinity();
  const CarbonCheckpoint back =
      CarbonCheckpoint::from_json(obs::parse_json(ck.to_json()));
  EXPECT_EQ(back, ck);
}

TEST(CheckpointSnapshot, CobraJsonRoundTripIsExact) {
  const CobraCheckpoint ck = make_cobra_checkpoint();
  const CobraCheckpoint back =
      CobraCheckpoint::from_json(obs::parse_json(ck.to_json()));
  EXPECT_EQ(back, ck);
}

TEST(CheckpointSnapshot, GuardOutcomeAndCountersRoundTripExactly) {
  CarbonCheckpoint ck = make_carbon_checkpoint();
  ck.progress.backend.guard_trips = 7;
  ck.progress.backend.guard_degraded_evals = 9;
  ck.progress.backend.guard_budget_exhausted = 2;
  ck.progress.result.best_evaluation.guard.rung = guard::Rung::kLagrangian;
  ck.progress.result.best_evaluation.guard.trip = guard::Trip::kInjected;
  ck.progress.result.best_evaluation.guard.construction_capped = true;
  ck.solution_archive[0].evaluation.guard.rung = guard::Rung::kGreedyOnly;
  ck.solution_archive[0].evaluation.guard.trip = guard::Trip::kNodeBudget;
  ck.solution_archive[0].evaluation.guard.budget_exhausted = true;
  const CarbonCheckpoint back =
      CarbonCheckpoint::from_json(obs::parse_json(ck.to_json()));
  EXPECT_EQ(back, ck);
}

TEST(CheckpointSnapshot, GuardFieldsAreOptionalForOldFiles) {
  // Guard fields are emitted only when non-default, so (a) an unguarded
  // checkpoint's bytes carry no guard keys at all — the pre-guard format —
  // and (b) such a body reads back with default guard state. Together these
  // prove schema version 1 stays backward and forward compatible.
  const CarbonCheckpoint ck = make_carbon_checkpoint();
  const std::string body = ck.to_json();
  EXPECT_EQ(body.find("grng"), std::string::npos);
  EXPECT_EQ(body.find("gtr"), std::string::npos);
  const CarbonCheckpoint back =
      CarbonCheckpoint::from_json(obs::parse_json(body));
  EXPECT_EQ(back.progress.backend.guard_trips, 0);
  EXPECT_EQ(back.progress.result.best_evaluation.guard, guard::Outcome{});
}

TEST(CheckpointSnapshot, OutOfRangeGuardEnumsAreRejected) {
  CarbonCheckpoint ck = make_carbon_checkpoint();
  ck.progress.result.best_evaluation.guard.rung = guard::Rung::kLagrangian;
  std::string body = ck.to_json();
  const std::string needle = "\"grng\":1";
  const std::size_t at = body.find(needle);
  ASSERT_NE(at, std::string::npos);
  body.replace(at, needle.size(), "\"grng\":9");
  EXPECT_THROW((void)CarbonCheckpoint::from_json(obs::parse_json(body)),
               CheckpointError);
}

TEST(CheckpointSnapshot, SaveLoadRoundTripsThroughTheFileLayer) {
  const std::string path = temp_path("roundtrip.ckpt");
  const CarbonCheckpoint ck = make_carbon_checkpoint();
  ck.save(path);
  EXPECT_EQ(CarbonCheckpoint::load(path), ck);

  const CobraCheckpoint cobra_ck = make_cobra_checkpoint();
  const std::string cobra_path = temp_path("roundtrip-cobra.ckpt");
  cobra_ck.save(cobra_path);
  EXPECT_EQ(CobraCheckpoint::load(cobra_path), cobra_ck);

  std::remove(path.c_str());
  std::remove(cobra_path.c_str());
}

TEST(CheckpointSnapshot, SaveOverwritesAtomically) {
  const std::string path = temp_path("overwrite.ckpt");
  CarbonCheckpoint ck = make_carbon_checkpoint();
  ck.save(path);
  ck.progress.generation = 18;
  ck.save(path);  // rename over the previous file
  EXPECT_EQ(CarbonCheckpoint::load(path).progress.generation, 18);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());
  std::remove(path.c_str());
}

// ---- File-layer rejection --------------------------------------------------

class CheckpointFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per test case: ctest -jN runs sibling cases of this fixture
    // concurrently, and a shared path makes one case's TearDown delete the
    // file under another.
    path_ = temp_path(std::string("reject-") +
                      ::testing::UnitTest::GetInstance()
                          ->current_test_info()
                          ->name() +
                      ".ckpt");
    make_carbon_checkpoint().save(path_);
    std::ifstream in(path_, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    file_ = buf.str();
    ASSERT_FALSE(file_.empty());
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void write_raw(const std::string& contents) {
    std::ofstream out(path_, std::ios::binary | std::ios::trunc);
    out << contents;
  }

  std::string path_;
  std::string file_;
};

TEST_F(CheckpointFileTest, MissingFileIsRejected) {
  EXPECT_THROW((void)CarbonCheckpoint::load(temp_path("nonexistent.ckpt")),
               CheckpointError);
}

TEST_F(CheckpointFileTest, WrongMagicIsRejected) {
  write_raw("{\"magic\":\"other\",\"version\":1,\"algo\":\"carbon\","
            "\"body_bytes\":2,\"body_fnv1a\":\"0000000000000000\"}\n{}\n");
  EXPECT_THROW((void)CarbonCheckpoint::load(path_), CheckpointError);
}

TEST_F(CheckpointFileTest, WrongVersionIsRejected) {
  const std::size_t pos = file_.find("\"version\":1");
  ASSERT_NE(pos, std::string::npos);
  std::string bumped = file_;
  bumped.replace(pos, 11, "\"version\":2");
  write_raw(bumped);
  EXPECT_THROW((void)CarbonCheckpoint::load(path_), CheckpointError);
}

TEST_F(CheckpointFileTest, WrongAlgorithmIsRejected) {
  EXPECT_THROW((void)CobraCheckpoint::load(path_), CheckpointError);
}

TEST_F(CheckpointFileTest, EveryTruncationIsRejected) {
  // Any prefix of the file must fail cleanly — header cut, body cut, or
  // the final newline missing a byte.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{10}, file_.size() / 4, file_.size() / 2,
        file_.size() - 2}) {
    SCOPED_TRACE("keep=" + std::to_string(keep));
    write_raw(file_.substr(0, keep));
    EXPECT_THROW((void)CarbonCheckpoint::load(path_), CheckpointError);
  }
}

TEST_F(CheckpointFileTest, BodyBitFlipsAreRejectedByTheContentHash) {
  const std::size_t body_start = file_.find('\n') + 1;
  for (const std::size_t offset :
       {body_start, body_start + (file_.size() - body_start) / 2,
        file_.size() - 3}) {
    SCOPED_TRACE("offset=" + std::to_string(offset));
    std::string corrupted = file_;
    corrupted[offset] ^= 0x01;
    write_raw(corrupted);
    EXPECT_THROW((void)CarbonCheckpoint::load(path_), CheckpointError);
  }
}

TEST_F(CheckpointFileTest, AppendedGarbageIsRejected) {
  write_raw(file_ + "extra");
  EXPECT_THROW((void)CarbonCheckpoint::load(path_), CheckpointError);
}

TEST_F(CheckpointFileTest, MissingBodyFieldIsRejected) {
  // Rebuild the file with a body missing a required key; the header is
  // recomputed so the hash check passes and the schema check must catch it.
  const std::string body = "{\"algo\":\"carbon\",\"seed\":\"0000000000000001\"}";
  save_checkpoint_file(path_, "carbon", body);
  EXPECT_THROW((void)CarbonCheckpoint::load(path_), CheckpointError);
}

TEST_F(CheckpointFileTest, Fnv1a64MatchesReferenceVectors) {
  // Reference vectors for 64-bit FNV-1a.
  EXPECT_EQ(fnv1a64(""), 14695981039346656037ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST_F(CheckpointFileTest, AtomicWriteFailsLoudlyOnBadDirectory) {
  EXPECT_THROW(
      write_file_atomic(temp_path("no/such/dir/x.ckpt"), "contents"),
      CheckpointError);
}

}  // namespace
}  // namespace carbon::core

#include "carbon/cobra/cobra_solver.hpp"

#include <gtest/gtest.h>

#include <set>

#include "carbon/cover/generator.hpp"

namespace carbon::cobra {
namespace {

bcpop::Instance small_instance() {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = 30;
  cfg.num_services = 4;
  cfg.seed = 21;
  return bcpop::Instance(cover::generate(cfg), /*num_owned=*/3);
}

CobraConfig small_config() {
  CobraConfig cfg;
  cfg.ul_population_size = 12;
  cfg.ll_population_size = 12;
  cfg.ul_archive_size = 12;
  cfg.ll_archive_size = 12;
  cfg.ul_eval_budget = 400;
  cfg.ll_eval_budget = 400;
  cfg.upper_phase_generations = 2;
  cfg.lower_phase_generations = 2;
  cfg.coevolution_pairs = 6;
  cfg.seed = 4;
  return cfg;
}

TEST(CobraSolver, ProducesFeasibleBestSolution) {
  const bcpop::Instance inst = small_instance();
  const core::RunResult r = CobraSolver(inst, small_config()).run();
  ASSERT_FALSE(r.best_pricing.empty());
  ASSERT_TRUE(r.best_evaluation.ll_feasible);
  EXPECT_GT(r.best_ul_objective, 0.0);
  EXPECT_GE(r.best_gap, 0.0);
}

TEST(CobraSolver, DeterministicForSeed) {
  const bcpop::Instance inst = small_instance();
  const core::RunResult a = CobraSolver(inst, small_config()).run();
  const core::RunResult b = CobraSolver(inst, small_config()).run();
  EXPECT_DOUBLE_EQ(a.best_ul_objective, b.best_ul_objective);
  EXPECT_DOUBLE_EQ(a.best_gap, b.best_gap);
  EXPECT_EQ(a.generations, b.generations);
}

TEST(CobraSolver, RespectsBudgets) {
  const bcpop::Instance inst = small_instance();
  const CobraConfig cfg = small_config();
  const core::RunResult r = CobraSolver(inst, cfg).run();
  // Overshoot bounded by one generation of either population.
  const long long slack = static_cast<long long>(cfg.ul_population_size) +
                          static_cast<long long>(cfg.ll_population_size);
  EXPECT_LE(r.ul_evaluations, cfg.ul_eval_budget + slack);
  EXPECT_LE(r.ll_evaluations, cfg.ll_eval_budget + slack);
}

TEST(CobraSolver, TraceContainsAllPhases) {
  const bcpop::Instance inst = small_instance();
  const core::RunResult r = CobraSolver(inst, small_config()).run();
  ASSERT_FALSE(r.convergence.empty());
  std::set<std::string> phases;
  for (const auto& pt : r.convergence) phases.insert(pt.phase);
  EXPECT_TRUE(phases.count("upper"));
  EXPECT_TRUE(phases.count("lower"));
  EXPECT_TRUE(phases.count("coevolution"));
}

TEST(CobraSolver, BestSoFarIsMonotone) {
  const bcpop::Instance inst = small_instance();
  const core::RunResult r = CobraSolver(inst, small_config()).run();
  for (std::size_t g = 1; g < r.convergence.size(); ++g) {
    ASSERT_GE(r.convergence[g].best_ul_so_far,
              r.convergence[g - 1].best_ul_so_far);
    ASSERT_LE(r.convergence[g].best_gap_so_far,
              r.convergence[g - 1].best_gap_so_far);
  }
}

TEST(CobraSolver, GenerationsAlternatePhasesInOrder) {
  const bcpop::Instance inst = small_instance();
  const core::RunResult r = CobraSolver(inst, small_config()).run();
  // First phase recorded must be "upper" (Algorithm 1 runs upper first).
  ASSERT_FALSE(r.convergence.empty());
  EXPECT_EQ(r.convergence.front().phase, "upper");
}

TEST(CobraSolver, InvalidConfigsThrow) {
  const bcpop::Instance inst = small_instance();
  CobraConfig cfg = small_config();
  cfg.ll_population_size = 1;
  EXPECT_THROW(CobraSolver(inst, cfg), std::invalid_argument);
  cfg = small_config();
  cfg.upper_phase_generations = 0;
  EXPECT_THROW(CobraSolver(inst, cfg), std::invalid_argument);
}

TEST(CobraSolver, ConvergenceCanBeDisabled) {
  const bcpop::Instance inst = small_instance();
  CobraConfig cfg = small_config();
  cfg.record_convergence = false;
  const core::RunResult r = CobraSolver(inst, cfg).run();
  EXPECT_TRUE(r.convergence.empty());
}

}  // namespace
}  // namespace carbon::cobra

#include "carbon/graph/graph.hpp"

#include <gtest/gtest.h>

#include "carbon/common/rng.hpp"

namespace carbon::graph {
namespace {

TEST(Digraph, AddArcAndAccess) {
  Digraph g(3);
  const ArcId a = g.add_arc(0, 1, 2.5);
  const ArcId b = g.add_arc(1, 2, 1.0);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_EQ(g.arc(a).to, 1u);
  EXPECT_DOUBLE_EQ(g.arc(a).weight, 2.5);
  EXPECT_EQ(g.out_arcs(0).size(), 1u);
  EXPECT_EQ(g.out_arcs(1)[0], b);
  EXPECT_TRUE(g.out_arcs(2).empty());
}

TEST(Digraph, RejectsBadInput) {
  Digraph g(2);
  EXPECT_THROW((void)g.add_arc(0, 5, 1.0), std::invalid_argument);
  EXPECT_THROW((void)g.add_arc(0, 1, -1.0), std::invalid_argument);
  const ArcId a = g.add_arc(0, 1, 1.0);
  EXPECT_THROW(g.set_weight(a + 1, 1.0), std::out_of_range);
  EXPECT_THROW(g.set_weight(a, -0.5), std::invalid_argument);
}

TEST(Dijkstra, LineGraph) {
  Digraph g(4);
  g.add_arc(0, 1, 1.0);
  g.add_arc(1, 2, 2.0);
  g.add_arc(2, 3, 3.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.distance[0], 0.0);
  EXPECT_DOUBLE_EQ(sp.distance[3], 6.0);
  const auto path = extract_path(sp, g, 3);
  ASSERT_EQ(path.size(), 3u);
  EXPECT_EQ(g.arc(path[0]).from, 0u);
  EXPECT_EQ(g.arc(path[2]).to, 3u);
}

TEST(Dijkstra, PicksCheaperOfTwoRoutes) {
  Digraph g(3);
  g.add_arc(0, 2, 10.0);          // direct but expensive
  g.add_arc(0, 1, 3.0);
  g.add_arc(1, 2, 3.0);           // detour, total 6
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_DOUBLE_EQ(sp.distance[2], 6.0);
  EXPECT_EQ(extract_path(sp, g, 2).size(), 2u);
}

TEST(Dijkstra, UnreachableNodes) {
  Digraph g(3);
  g.add_arc(0, 1, 1.0);
  const ShortestPaths sp = dijkstra(g, 0);
  EXPECT_FALSE(sp.reachable(2));
  EXPECT_TRUE(extract_path(sp, g, 2).empty());
}

TEST(Dijkstra, SourceOutOfRangeThrows) {
  Digraph g(2);
  EXPECT_THROW((void)dijkstra(g, 7), std::invalid_argument);
}

TEST(Dijkstra, WeightUpdateChangesRoute) {
  Digraph g(3);
  const ArcId direct = g.add_arc(0, 2, 4.0);
  g.add_arc(0, 1, 3.0);
  g.add_arc(1, 2, 3.0);
  EXPECT_DOUBLE_EQ(dijkstra(g, 0).distance[2], 4.0);  // direct wins
  g.set_weight(direct, 10.0);                         // toll it
  EXPECT_DOUBLE_EQ(dijkstra(g, 0).distance[2], 6.0);  // detour wins
}

/// Floyd-Warshall reference on a dense matrix.
std::vector<std::vector<double>> floyd_warshall(const Digraph& g) {
  const std::size_t n = g.num_nodes();
  std::vector<std::vector<double>> d(n, std::vector<double>(n, kUnreachable));
  for (std::size_t i = 0; i < n; ++i) d[i][i] = 0.0;
  for (std::size_t a = 0; a < g.num_arcs(); ++a) {
    const Arc& arc = g.arc(static_cast<ArcId>(a));
    d[arc.from][arc.to] = std::min(d[arc.from][arc.to], arc.weight);
  }
  for (std::size_t k = 0; k < n; ++k) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        if (d[i][k] + d[k][j] < d[i][j]) d[i][j] = d[i][k] + d[k][j];
      }
    }
  }
  return d;
}

class DijkstraRandomTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DijkstraRandomTest, MatchesFloydWarshall) {
  common::Rng rng(GetParam() * 13 + 1);
  const std::size_t n = 12;
  Digraph g(n);
  for (int arcs = 0; arcs < 40; ++arcs) {
    const auto from = static_cast<NodeId>(rng.below(n));
    const auto to = static_cast<NodeId>(rng.below(n));
    if (from == to) continue;
    g.add_arc(from, to, rng.uniform(0.0, 10.0));
  }
  const auto reference = floyd_warshall(g);
  for (NodeId s = 0; s < n; ++s) {
    const ShortestPaths sp = dijkstra(g, s);
    for (NodeId t = 0; t < n; ++t) {
      if (reference[s][t] == kUnreachable) {
        ASSERT_FALSE(sp.reachable(t));
      } else {
        ASSERT_NEAR(sp.distance[t], reference[s][t], 1e-9)
            << "s=" << s << " t=" << t;
        // Extracted path must realize the distance.
        double along = 0.0;
        for (const ArcId a : extract_path(sp, g, t)) {
          along += g.arc(a).weight;
        }
        ASSERT_NEAR(along, reference[s][t], 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DijkstraRandomTest,
                         ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace carbon::graph

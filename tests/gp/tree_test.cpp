#include "carbon/gp/tree.hpp"

#include <gtest/gtest.h>

#include <array>

#include "carbon/common/rng.hpp"
#include "carbon/gp/generate.hpp"

namespace carbon::gp {
namespace {

using Features = std::array<double, kNumTerminals>;

double eval(const Tree& t, const Features& f) {
  return t.evaluate(std::span<const double, kNumTerminals>(f));
}

const Features kF = {/*COST*/ 10.0, /*QSUM*/ 20.0, /*QCOV*/ 15.0,
                     /*BRES*/ 100.0, /*DUAL*/ 12.0, /*XBAR*/ 0.5};

TEST(Tree, LeafConstructors) {
  const Tree c = Tree::constant(3.5);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_TRUE(c.valid());
  EXPECT_DOUBLE_EQ(eval(c, kF), 3.5);

  const Tree t = Tree::terminal(Terminal::kDual);
  EXPECT_DOUBLE_EQ(eval(t, kF), 12.0);
}

TEST(Tree, ArithmeticOperators) {
  const Tree cost = Tree::terminal(Terminal::kCost);
  const Tree qcov = Tree::terminal(Terminal::kQcov);
  EXPECT_DOUBLE_EQ(eval(Tree::apply(OpCode::kAdd, cost, qcov), kF), 25.0);
  EXPECT_DOUBLE_EQ(eval(Tree::apply(OpCode::kSub, cost, qcov), kF), -5.0);
  EXPECT_DOUBLE_EQ(eval(Tree::apply(OpCode::kMul, cost, qcov), kF), 150.0);
  EXPECT_DOUBLE_EQ(eval(Tree::apply(OpCode::kDiv, qcov, cost), kF), 1.5);
  EXPECT_DOUBLE_EQ(eval(Tree::apply(OpCode::kMod, qcov, cost), kF), 5.0);
}

TEST(Tree, OperandOrderIsLeftRight) {
  // sub(COST, QCOV) must be COST - QCOV, not QCOV - COST.
  const Tree t = Tree::apply(OpCode::kSub, Tree::terminal(Terminal::kCost),
                             Tree::terminal(Terminal::kQcov));
  EXPECT_DOUBLE_EQ(eval(t, kF), -5.0);
}

TEST(Tree, ProtectedDivisionByZeroGivesOne) {
  const Tree t = Tree::apply(OpCode::kDiv, Tree::terminal(Terminal::kCost),
                             Tree::constant(0.0));
  EXPECT_DOUBLE_EQ(eval(t, kF), 1.0);
}

TEST(Tree, ProtectedModuloByZeroGivesZero) {
  const Tree t = Tree::apply(OpCode::kMod, Tree::terminal(Terminal::kCost),
                             Tree::constant(0.0));
  EXPECT_DOUBLE_EQ(eval(t, kF), 0.0);
}

TEST(Tree, EvaluationNeverReturnsNonFinite) {
  const Tree huge = Tree::apply(
      OpCode::kMul,
      Tree::apply(OpCode::kMul, Tree::constant(1e300), Tree::constant(1e300)),
      Tree::constant(1e300));
  EXPECT_TRUE(std::isfinite(eval(huge, kF)));
}

TEST(Tree, DepthAndSize) {
  const Tree leaf = Tree::constant(1.0);
  EXPECT_EQ(leaf.depth(), 1);
  const Tree one = Tree::apply(OpCode::kAdd, leaf, leaf);
  EXPECT_EQ(one.depth(), 2);
  EXPECT_EQ(one.size(), 3u);
  const Tree lopsided = Tree::apply(OpCode::kMul, one, leaf);
  EXPECT_EQ(lopsided.depth(), 3);
  EXPECT_EQ(lopsided.size(), 5u);
}

TEST(Tree, SubtreeExtraction) {
  const Tree inner = Tree::apply(OpCode::kAdd, Tree::constant(1.0),
                                 Tree::constant(2.0));
  const Tree t = Tree::apply(OpCode::kMul, inner,
                             Tree::terminal(Terminal::kCost));
  // Prefix: [mul, add, 1, 2, COST]; subtree at 1 is the add.
  EXPECT_EQ(t.subtree_end(1), 4u);
  EXPECT_EQ(t.subtree(1), inner);
  EXPECT_EQ(t.subtree(4), Tree::terminal(Terminal::kCost));
}

TEST(Tree, NodeDepth) {
  const Tree inner = Tree::apply(OpCode::kAdd, Tree::constant(1.0),
                                 Tree::constant(2.0));
  const Tree t = Tree::apply(OpCode::kMul, inner,
                             Tree::terminal(Terminal::kCost));
  EXPECT_EQ(t.node_depth(0), 1);  // mul
  EXPECT_EQ(t.node_depth(1), 2);  // add
  EXPECT_EQ(t.node_depth(2), 3);  // 1
  EXPECT_EQ(t.node_depth(3), 3);  // 2
  EXPECT_EQ(t.node_depth(4), 2);  // COST
}

TEST(Tree, ReplaceSubtree) {
  Tree t = Tree::apply(OpCode::kMul,
                       Tree::apply(OpCode::kAdd, Tree::constant(1.0),
                                   Tree::constant(2.0)),
                       Tree::terminal(Terminal::kCost));
  t.replace_subtree(1, Tree::constant(7.0));
  EXPECT_TRUE(t.valid());
  EXPECT_DOUBLE_EQ(eval(t, kF), 70.0);
}

TEST(Tree, ValidRejectsMalformedEncodings) {
  EXPECT_FALSE(Tree(std::vector<Node>{}).valid());
  Node op;
  op.op = OpCode::kAdd;
  Node leaf;
  leaf.op = OpCode::kConst;
  EXPECT_FALSE(Tree({op}).valid());              // missing operands
  EXPECT_FALSE(Tree({op, leaf}).valid());        // one operand short
  EXPECT_TRUE(Tree({op, leaf, leaf}).valid());
  EXPECT_FALSE(Tree({leaf, leaf}).valid());      // trailing garbage
  Node bad_term;
  bad_term.op = OpCode::kTerminal;
  bad_term.terminal = 200;
  EXPECT_FALSE(Tree({bad_term}).valid());
}

TEST(Tree, ToStringFormats) {
  const Tree t = Tree::apply(OpCode::kDiv, Tree::terminal(Terminal::kDual),
                             Tree::terminal(Terminal::kCost));
  EXPECT_EQ(t.to_string(), "(div DUAL COST)");
  EXPECT_EQ(Tree::constant(2.5).to_string(), "2.5");
}

TEST(TreeParse, RoundtripHandWritten) {
  const std::string text = "(add (mul COST QCOV) (div DUAL 3.5))";
  const Tree t = parse(text);
  EXPECT_EQ(t.to_string(), text);
  EXPECT_DOUBLE_EQ(eval(t, kF), 10.0 * 15.0 + 12.0 / 3.5);
}

TEST(TreeParse, RejectsBadInput) {
  EXPECT_THROW((void)parse(""), std::runtime_error);
  EXPECT_THROW((void)parse("(add COST)"), std::runtime_error);
  EXPECT_THROW((void)parse("(bogus COST COST)"), std::runtime_error);
  EXPECT_THROW((void)parse("(add COST COST) extra"), std::runtime_error);
  EXPECT_THROW((void)parse("NOTATERMINAL"), std::runtime_error);
  EXPECT_THROW((void)parse("(add COST COST"), std::runtime_error);
}

class TreeRoundtripTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TreeRoundtripTest, RandomTreesSurviveStringRoundtrip) {
  common::Rng rng(GetParam());
  GenerateConfig cfg;
  cfg.use_constants = true;
  for (int rep = 0; rep < 20; ++rep) {
    const Tree t = generate_ramped(rng, cfg);
    const Tree back = parse(t.to_string());
    ASSERT_TRUE(back.valid());
    // Structural equality can differ on constant formatting; compare
    // semantics on several feature vectors instead.
    for (int probe = 0; probe < 5; ++probe) {
      Features f;
      for (double& v : f) v = rng.uniform(-100.0, 100.0);
      ASSERT_NEAR(eval(t, f), eval(back, f), 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TreeRoundtripTest,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(TreeSimplify, FoldsConstants) {
  const Tree t = Tree::apply(OpCode::kAdd, Tree::constant(2.0),
                             Tree::constant(3.0));
  const Tree s = simplify(t);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_DOUBLE_EQ(eval(s, kF), 5.0);
}

TEST(TreeSimplify, IdentitiesUnderProtectedSemantics) {
  const Tree x = Tree::terminal(Terminal::kQcov);
  EXPECT_EQ(simplify(Tree::apply(OpCode::kSub, x, x)).to_string(), "0");
  EXPECT_EQ(simplify(Tree::apply(OpCode::kDiv, x, x)).to_string(), "1");
  EXPECT_EQ(simplify(Tree::apply(OpCode::kMod, x, x)).to_string(), "0");
}

TEST(TreeSimplify, NeutralElements) {
  const Tree x = Tree::terminal(Terminal::kCost);
  EXPECT_EQ(simplify(Tree::apply(OpCode::kAdd, Tree::constant(0.0), x))
                .to_string(),
            "COST");
  EXPECT_EQ(simplify(Tree::apply(OpCode::kAdd, x, Tree::constant(0.0)))
                .to_string(),
            "COST");
  EXPECT_EQ(simplify(Tree::apply(OpCode::kMul, Tree::constant(1.0), x))
                .to_string(),
            "COST");
  EXPECT_EQ(simplify(Tree::apply(OpCode::kDiv, x, Tree::constant(1.0)))
                .to_string(),
            "COST");
}

class SimplifySemanticsTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(SimplifySemanticsTest, SimplifyPreservesSemantics) {
  common::Rng rng(GetParam() * 31 + 5);
  GenerateConfig cfg;
  cfg.use_constants = true;
  for (int rep = 0; rep < 25; ++rep) {
    const Tree t = generate_ramped(rng, cfg);
    const Tree s = simplify(t);
    ASSERT_TRUE(s.valid());
    ASSERT_LE(s.size(), t.size());
    for (int probe = 0; probe < 5; ++probe) {
      Features f;
      for (double& v : f) v = rng.uniform(-50.0, 50.0);
      ASSERT_NEAR(eval(t, f), eval(s, f), 1e-6)
          << "tree: " << t.to_string() << " simplified: " << s.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifySemanticsTest,
                         ::testing::Range<std::uint64_t>(0, 6));

TEST(Tree, TerminalNamesAreUnique) {
  std::set<std::string> names;
  for (std::size_t t = 0; t < kNumTerminals; ++t) {
    names.insert(terminal_name(static_cast<Terminal>(t)));
  }
  EXPECT_EQ(names.size(), kNumTerminals);
}

TEST(Tree, LargeTreeEvaluationUsesHeapPath) {
  // Build a right-leaning chain deeper than the 64-slot stack buffer.
  Tree t = Tree::constant(1.0);
  for (int i = 0; i < 100; ++i) {
    t = Tree::apply(OpCode::kAdd, Tree::constant(1.0), t);
  }
  EXPECT_EQ(t.size(), 201u);
  EXPECT_DOUBLE_EQ(eval(t, kF), 101.0);
}

}  // namespace
}  // namespace carbon::gp

#include "carbon/gp/population_stats.hpp"

#include <gtest/gtest.h>

#include "carbon/common/rng.hpp"
#include "carbon/gp/generate.hpp"

namespace carbon::gp {
namespace {

TEST(PopulationStats, EmptyPopulation) {
  const PopulationStats s = analyze_population({});
  EXPECT_EQ(s.population, 0u);
  EXPECT_EQ(s.unique_structures, 0u);
}

TEST(PopulationStats, HandBuiltPopulation) {
  const Tree cost = Tree::terminal(Terminal::kCost);
  const Tree qcov = Tree::terminal(Terminal::kQcov);
  const Tree sum = Tree::apply(OpCode::kAdd, cost, qcov);
  const std::vector<Tree> pop = {cost, cost, qcov, sum};

  const PopulationStats s = analyze_population(pop);
  EXPECT_EQ(s.population, 4u);
  EXPECT_EQ(s.unique_structures, 3u);  // cost duplicated
  EXPECT_DOUBLE_EQ(s.mean_size, (1 + 1 + 1 + 3) / 4.0);
  EXPECT_EQ(s.max_size, 3u);
  EXPECT_EQ(s.max_depth, 2);
  // Terminal usage: COST in 3 of 4, QCOV in 2 of 4.
  EXPECT_DOUBLE_EQ(s.terminal_usage[static_cast<std::size_t>(Terminal::kCost)],
                   0.75);
  EXPECT_DOUBLE_EQ(s.terminal_usage[static_cast<std::size_t>(Terminal::kQcov)],
                   0.5);
  EXPECT_DOUBLE_EQ(s.terminal_usage[static_cast<std::size_t>(Terminal::kDual)],
                   0.0);
  // Static heuristics: the two `cost` copies; qcov and sum are dynamic.
  EXPECT_DOUBLE_EQ(s.static_fraction, 0.5);
}

TEST(PopulationStats, AllIdenticalTreesCountOnce) {
  const Tree t = Tree::apply(OpCode::kMul, Tree::terminal(Terminal::kDual),
                             Tree::terminal(Terminal::kXbar));
  const std::vector<Tree> pop(10, t);
  const PopulationStats s = analyze_population(pop);
  EXPECT_EQ(s.unique_structures, 1u);
  EXPECT_DOUBLE_EQ(s.static_fraction, 1.0);
}

TEST(PopulationStats, RandomPopulationIsDiverse) {
  common::Rng rng(5);
  std::vector<Tree> pop;
  for (int i = 0; i < 60; ++i) {
    pop.push_back(generate_ramped(rng));
  }
  const PopulationStats s = analyze_population(pop);
  EXPECT_EQ(s.population, 60u);
  EXPECT_GT(s.unique_structures, 30u);
  EXPECT_GT(s.mean_size, 1.0);
  EXPECT_LE(s.mean_depth, s.max_depth);
  EXPECT_GE(s.static_fraction, 0.0);
  EXPECT_LE(s.static_fraction, 1.0);
}

TEST(PopulationStats, ConstantsOnlyTreeUsesNoTerminals) {
  const std::vector<Tree> pop = {Tree::constant(5.0)};
  const PopulationStats s = analyze_population(pop);
  for (double u : s.terminal_usage) EXPECT_DOUBLE_EQ(u, 0.0);
  EXPECT_DOUBLE_EQ(s.static_fraction, 1.0);
}

}  // namespace
}  // namespace carbon::gp

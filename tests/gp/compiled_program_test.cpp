// Differential tests for gp::CompiledProgram: the compiled batch evaluator
// must be bit-compatible with the Tree::evaluate interpreter (the reference
// oracle) under the equivalence contract documented in compiled.hpp.
#include "carbon/gp/compiled.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "carbon/common/rng.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/cover/greedy.hpp"
#include "carbon/gp/generate.hpp"
#include "carbon/gp/scoring.hpp"
#include "carbon/gp/tree.hpp"

namespace carbon::gp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNan = std::numeric_limits<double>::quiet_NaN();

/// Feature values that stress the protected-operator thresholds: exactly at,
/// just below, and just above kProtectTol (1e-9), zeros of both signs, and
/// the clamp boundary (1e12).
const std::vector<double> kEdgeValues = {
    0.0,   -0.0,  1e-10, -1e-10, 1e-9,    -1e-9,  2e-9,  -2e-9,
    1.0,   -1.0,  0.125, 5.5,    -3.25,   123.456, 1e12, -1e12,
    1e6,   -1e6,
};

double draw_feature(common::Rng& rng, bool allow_nonfinite) {
  const double roll = rng.uniform();
  if (allow_nonfinite && roll < 0.15) {
    const std::vector<double> bad = {kInf, -kInf, kNan};
    return bad[rng.below(bad.size())];
  }
  if (roll < 0.5) return kEdgeValues[rng.below(kEdgeValues.size())];
  return rng.uniform(-100.0, 100.0);
}

std::array<double, kNumTerminals> draw_features(common::Rng& rng,
                                                bool allow_nonfinite) {
  std::array<double, kNumTerminals> f{};
  for (double& v : f) v = draw_feature(rng, allow_nonfinite);
  return f;
}

/// Bit-compatibility up to NaN identity: both NaN, or == (which treats
/// -0.0 and +0.0 as equal — the only sign-of-zero divergence the rewrites
/// can introduce, and one no downstream comparison can observe).
void expect_equiv(double want, double got) {
  if (std::isnan(want) || std::isnan(got)) {
    EXPECT_TRUE(std::isnan(want) && std::isnan(got))
        << "want " << want << " got " << got;
  } else {
    EXPECT_EQ(want, got);
  }
}

TEST(CompiledProgram, FuzzMatchesInterpreterSimplifyOn) {
  common::Rng rng(2024);
  GenerateConfig gen;
  gen.min_depth = 2;
  gen.max_depth = 8;
  std::vector<double> scratch;
  for (int iter = 0; iter < 1200; ++iter) {
    gen.use_constants = (iter % 3 == 0);
    const Tree tree = generate_ramped(rng, gen);
    const CompiledProgram program = CompiledProgram::compile(tree);
    for (int rep = 0; rep < 3; ++rep) {
      // Simplify-on equivalence holds for finite features within the value
      // cap (the identities x/x=1, x-x=0 are exact there).
      const auto f = draw_features(rng, /*allow_nonfinite=*/false);
      const std::span<const double, kNumTerminals> fs(f);
      const double want = tree.evaluate(fs);
      expect_equiv(want, program.evaluate(fs));
      expect_equiv(want, program.evaluate(fs, scratch));
    }
  }
}

TEST(CompiledProgram, FuzzMatchesInterpreterSimplifyOff) {
  common::Rng rng(7);
  GenerateConfig gen;
  gen.min_depth = 2;
  gen.max_depth = 7;
  gen.use_constants = true;
  const CompileOptions no_simplify{.simplify = false};
  for (int iter = 0; iter < 500; ++iter) {
    const Tree tree = generate_ramped(rng, gen);
    const CompiledProgram program = CompiledProgram::compile(tree, no_simplify);
    for (int rep = 0; rep < 3; ++rep) {
      // Without rewrites, equivalence extends to non-finite features.
      const auto f = draw_features(rng, /*allow_nonfinite=*/true);
      const std::span<const double, kNumTerminals> fs(f);
      expect_equiv(tree.evaluate(fs), program.evaluate(fs));
    }
  }
}

TEST(CompiledProgram, FuzzBatchMatchesScalar) {
  common::Rng rng(99);
  GenerateConfig gen;
  gen.min_depth = 2;
  gen.max_depth = 8;
  gen.use_constants = true;
  constexpr std::size_t kBatch = 33;
  std::vector<double> scratch;
  for (int iter = 0; iter < 300; ++iter) {
    const Tree tree = generate_ramped(rng, gen);
    const CompiledProgram program = CompiledProgram::compile(tree);

    // Per-element columns for every terminal except BRES, which broadcasts
    // a single round-scalar exactly as the greedy's feature view does.
    std::array<std::vector<double>, kNumTerminals> columns;
    for (std::size_t t = 0; t < kNumTerminals; ++t) {
      if (t == static_cast<std::size_t>(Terminal::kBres)) {
        columns[t] = {draw_feature(rng, false)};
      } else {
        for (std::size_t i = 0; i < kBatch; ++i) {
          columns[t].push_back(draw_feature(rng, false));
        }
      }
    }
    CompiledProgram::TerminalBatch batch;
    for (std::size_t t = 0; t < kNumTerminals; ++t) {
      batch.columns[t] = columns[t];
    }
    batch.count = kBatch;

    std::vector<double> out(kBatch);
    program.evaluate_batch(batch, out, scratch);
    for (std::size_t i = 0; i < kBatch; ++i) {
      std::array<double, kNumTerminals> f{};
      for (std::size_t t = 0; t < kNumTerminals; ++t) {
        f[t] = columns[t].size() == 1 ? columns[t][0] : columns[t][i];
      }
      expect_equiv(tree.evaluate(std::span<const double, kNumTerminals>(f)),
                   out[i]);
    }
  }
}

TEST(CompiledProgram, ProtectedDivModEdgeCases) {
  const Tree div = parse("(div COST QSUM)");
  const Tree mod = parse("(mod COST QSUM)");
  const CompiledProgram cdiv = CompiledProgram::compile(div);
  const CompiledProgram cmod = CompiledProgram::compile(mod);
  for (double b : kEdgeValues) {
    for (double a : {7.0, -7.0, 0.0, 1e12}) {
      std::array<double, kNumTerminals> f{};
      f[static_cast<std::size_t>(Terminal::kCost)] = a;
      f[static_cast<std::size_t>(Terminal::kQsum)] = b;
      const std::span<const double, kNumTerminals> fs(f);
      expect_equiv(div.evaluate(fs), cdiv.evaluate(fs));
      expect_equiv(mod.evaluate(fs), cmod.evaluate(fs));
    }
  }
}

TEST(CompiledProgram, CseSharesRepeatedSubexpressions) {
  // (div COST QSUM) appears twice; value numbering must emit it once:
  // load COST, load QSUM, div, add = 4 instructions for 7 tree nodes.
  const Tree tree = parse("(add (div COST QSUM) (div COST QSUM))");
  const CompiledProgram program = CompiledProgram::compile(tree);
  EXPECT_EQ(program.num_instructions(), 4u);
}

TEST(CompiledProgram, CanonicalFormMergesCommutedTrees) {
  const CompiledProgram a = CompiledProgram::compile(parse("(add COST QSUM)"));
  const CompiledProgram b = CompiledProgram::compile(parse("(add QSUM COST)"));
  EXPECT_EQ(a.canonical_hash(), b.canonical_hash());
  EXPECT_EQ(a.canonical_nodes(), b.canonical_nodes());
  // Subtraction is not commutative: the canonical forms stay distinct.
  const CompiledProgram c = CompiledProgram::compile(parse("(sub COST QSUM)"));
  const CompiledProgram d = CompiledProgram::compile(parse("(sub QSUM COST)"));
  EXPECT_NE(c.canonical_nodes(), d.canonical_nodes());
}

TEST(CompiledProgram, IsStaticSeesThroughSimplification) {
  // Syntactically dynamic, semantically static: QCOV - QCOV folds to 0.
  const Tree tree = parse("(sub QCOV QCOV)");
  EXPECT_FALSE(is_static_heuristic(tree));
  const CompiledProgram program = CompiledProgram::compile(tree);
  EXPECT_TRUE(program.is_static());
  EXPECT_FALSE(program.uses_terminal(Terminal::kQcov));
  // A genuinely dynamic tree stays dynamic.
  const CompiledProgram dyn =
      CompiledProgram::compile(parse("(div QCOV COST)"));
  EXPECT_FALSE(dyn.is_static());
  EXPECT_TRUE(dyn.uses_terminal(Terminal::kQcov));
}

TEST(CompiledProgram, LargeTreeUsesScratchOverload) {
  // Grow a deep comb so the interpreter's operand stack and the compiled
  // register file both exceed any stack-local fast path.
  common::Rng rng(5);
  GenerateConfig gen;
  gen.min_depth = 9;
  gen.max_depth = 9;
  Tree tree = generate_full(rng, 9, gen);
  ASSERT_GT(tree.size(), 64u);
  const CompiledProgram program = CompiledProgram::compile(tree);
  std::vector<double> tree_scratch;
  std::vector<double> prog_scratch;
  for (int rep = 0; rep < 20; ++rep) {
    const auto f = draw_features(rng, false);
    const std::span<const double, kNumTerminals> fs(f);
    const double want = tree.evaluate(fs);
    expect_equiv(want, tree.evaluate(fs, tree_scratch));
    expect_equiv(want, program.evaluate(fs, prog_scratch));
  }
}

TEST(CompiledProgram, GreedyBatchedMatchesGreedyWith) {
  common::Rng rng(314);
  GenerateConfig gen;
  gen.min_depth = 2;
  gen.max_depth = 6;
  gen.use_constants = true;
  for (int iter = 0; iter < 25; ++iter) {
    cover::GeneratorConfig icfg;
    icfg.num_bundles = 40;
    icfg.num_services = 5;
    icfg.seed = 1000 + static_cast<std::uint64_t>(iter);
    const cover::Instance inst = cover::generate(icfg);

    std::vector<double> duals(inst.num_services());
    for (double& d : duals) d = rng.uniform(0.0, 50.0);
    std::vector<double> xbar(inst.num_bundles());
    for (double& x : xbar) x = rng.uniform(0.0, 1.0);

    const Tree tree = generate_ramped(rng, gen);
    const auto program = std::make_shared<const CompiledProgram>(
        CompiledProgram::compile(tree));

    const cover::SolveResult want = cover::greedy_solve_with(
        inst,
        [&tree](const cover::BundleFeatures& f) {
          const auto arr = features_to_array(f);
          return tree.evaluate(std::span<const double, kNumTerminals>(arr));
        },
        duals, xbar);
    const cover::SolveResult got = cover::greedy_solve_batched(
        inst, make_batch_score_function(program), duals, xbar);

    EXPECT_EQ(want.feasible, got.feasible);
    EXPECT_EQ(want.selection, got.selection);
    EXPECT_EQ(want.value, got.value);  // bitwise
  }
}

}  // namespace
}  // namespace carbon::gp

// Differential fuzz of the SIMD bytecode kernels against the scalar
// reference path: for the same compiled program and terminal batch, the
// AVX2 table must produce bit-identical doubles (NaN payloads included) to
// the scalar table. The batches are built to hit every protected-operator
// edge — zero and near-tolerance divisors, ±inf, NaN, -0.0, values at the
// clamp cap — plus ragged tails (count % 4 != 0) and size-1 broadcast
// columns, which exercise the splat kernel and the scalar tail loops.
//
// Labeled sanitizer-critical: the AVX2 loops index raw register rows in
// 4-wide strides; ASan/UBSan verify the tail handling on every ragged
// batch size, and TSan covers the once-per-process dispatch slot being
// resolved from concurrent evaluations.

#include <gtest/gtest.h>

#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "carbon/common/rng.hpp"
#include "carbon/gp/compiled.hpp"
#include "carbon/gp/eval_ops.hpp"
#include "carbon/gp/generate.hpp"
#include "carbon/gp/simd.hpp"
#include "carbon/gp/tree.hpp"

namespace carbon::gp {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Restores the auto-dispatched path when a test finishes, so path forcing
/// cannot leak across tests.
struct PathGuard {
  ~PathGuard() { simd::select_path("auto"); }
};

[[nodiscard]] std::uint64_t bits(double v) noexcept {
  return std::bit_cast<std::uint64_t>(v);
}

/// Adversarial terminal value: finite uniforms mixed with every edge the
/// protected operators special-case.
[[nodiscard]] double edge_value(common::Rng& rng) {
  switch (rng.below(12)) {
    case 0: return 0.0;
    case 1: return -0.0;
    case 2: return kInf;
    case 3: return -kInf;
    case 4: return kNaN;
    case 5: return detail::kProtectTol;            // just above the guard
    case 6: return -detail::kProtectTol * 0.999;   // just below the guard
    case 7: return rng.uniform(-1e-9, 1e-9);       // protected-div territory
    case 8: return detail::kValueCap;
    case 9: return -detail::kValueCap * 2.0;       // beyond the clamp
    default: return rng.uniform(-1e6, 1e6);
  }
}

struct FuzzBatch {
  std::array<std::vector<double>, kNumTerminals> columns;
  CompiledProgram::TerminalBatch batch;
};

/// Batch of `count` elements; each column independently has a 1-in-4 chance
/// of being a size-1 broadcast (the contract allows broadcasting ANY
/// terminal, not just BRES).
FuzzBatch make_batch(common::Rng& rng, std::size_t count) {
  FuzzBatch fb;
  for (std::size_t t = 0; t < kNumTerminals; ++t) {
    const std::size_t len = rng.below(4) == 0 ? 1 : count;
    fb.columns[t].reserve(len);
    for (std::size_t i = 0; i < len; ++i) {
      fb.columns[t].push_back(edge_value(rng));
    }
  }
  for (std::size_t t = 0; t < kNumTerminals; ++t) {
    fb.batch.columns[t] = fb.columns[t];
  }
  fb.batch.count = count;
  return fb;
}

TEST(SimdEval, DispatchReportsAConsistentTable) {
  PathGuard guard;
  const simd::Path forced = simd::select_path("scalar");
  EXPECT_EQ(forced, simd::Path::kScalar);
  EXPECT_STREQ(simd::path_name(), "scalar");
  EXPECT_EQ(simd::lanes(), 1u);

  const simd::Path requested = simd::select_path("avx2");
  if (simd::avx2_kernels_available()) {
    EXPECT_EQ(requested, simd::Path::kAvx2);
    EXPECT_STREQ(simd::path_name(), "avx2");
    EXPECT_EQ(simd::lanes(), 4u);
  } else {
    // Forcing AVX2 without build/CPU support degrades to scalar, visibly.
    EXPECT_EQ(requested, simd::Path::kScalar);
    EXPECT_STREQ(simd::path_name(), "scalar");
  }

  // Unknown strings read as auto and must match availability.
  const simd::Path auto_path = simd::select_path("definitely-not-a-path");
  EXPECT_EQ(auto_path, simd::avx2_kernels_available() ? simd::Path::kAvx2
                                                      : simd::Path::kScalar);
}

TEST(SimdEval, KernelTablesAgreeBitwiseOnEdgeVectors) {
  if (!simd::avx2_kernels_available()) {
    GTEST_SKIP() << "AVX2 kernels not available on this build/CPU";
  }
  const simd::Kernels& scalar = simd::detail::scalar_table();
  const simd::Kernels* avx2 = simd::detail::avx2_table();
  ASSERT_NE(avx2, nullptr);

  common::Rng rng(2024);
  // Every ragged length from 1 to 2 full vectors plus a long body.
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4},
        std::size_t{5}, std::size_t{6}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{31}, std::size_t{100}, std::size_t{257}}) {
    std::vector<double> a(n);
    std::vector<double> b(n);
    for (std::size_t i = 0; i < n; ++i) {
      a[i] = edge_value(rng);
      b[i] = edge_value(rng);
    }
    std::vector<double> out_s(n);
    std::vector<double> out_v(n);
    const std::pair<simd::Kernels::BinFn, simd::Kernels::BinFn> ops[] = {
        {scalar.add, avx2->add}, {scalar.sub, avx2->sub},
        {scalar.mul, avx2->mul}, {scalar.div, avx2->div},
        {scalar.mod, avx2->mod}};
    for (const auto& [fs, fv] : ops) {
      fs(a.data(), b.data(), out_s.data(), n);
      fv(a.data(), b.data(), out_v.data(), n);
      for (std::size_t i = 0; i < n; ++i) {
        ASSERT_EQ(bits(out_s[i]), bits(out_v[i]))
            << "n=" << n << " i=" << i << " a=" << a[i] << " b=" << b[i];
      }
    }
    scalar.splat(a[0], out_s.data(), n);
    avx2->splat(a[0], out_v.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits(out_s[i]), bits(out_v[i])) << "splat n=" << n;
    }
    scalar.copy(a.data(), out_s.data(), n);
    avx2->copy(a.data(), out_v.data(), n);
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(bits(out_s[i]), bits(out_v[i])) << "copy n=" << n;
    }
  }
}

TEST(SimdEval, ScalarVsSimdDifferentialFuzz) {
  if (!simd::avx2_kernels_available()) {
    GTEST_SKIP() << "AVX2 kernels not available on this build/CPU";
  }
  PathGuard guard;
  common::Rng rng(777);

  // Ragged and aligned batch sizes; every count hits the tail loop except
  // the multiples of 4.
  const std::size_t counts[] = {1, 2, 3, 4, 5, 7, 8, 13, 33, 64, 101, 200};

  std::size_t programs = 0;
  std::vector<double> scratch_s;
  std::vector<double> scratch_v;
  for (int round = 0; round < 520; ++round) {
    GenerateConfig gen;
    const int depth = 2 + static_cast<int>(rng.below(5));
    gen.min_depth = depth;
    gen.max_depth = depth;
    const Tree tree = generate_full(rng, depth, gen);
    // Both the simplified program (the production path) and the raw
    // linearization (exercises terminal loads the simplifier would fold).
    for (const bool simplify : {true, false}) {
      const CompiledProgram program =
          CompiledProgram::compile(tree, {.simplify = simplify});
      const std::size_t count = counts[rng.below(std::size(counts))];
      const FuzzBatch fb = make_batch(rng, count);

      std::vector<double> out_s(count);
      std::vector<double> out_v(count);
      ASSERT_EQ(simd::select_path("scalar"), simd::Path::kScalar);
      program.evaluate_batch(fb.batch, out_s, scratch_s);
      ASSERT_EQ(simd::select_path("avx2"), simd::Path::kAvx2);
      program.evaluate_batch(fb.batch, out_v, scratch_v);

      for (std::size_t i = 0; i < count; ++i) {
        ASSERT_EQ(bits(out_s[i]), bits(out_v[i]))
            << tree.to_string() << " simplify=" << simplify
            << " count=" << count << " element=" << i;
      }
      ++programs;
    }
  }
  // The satellite contract: at least 1000 random programs differentially
  // fuzzed (520 rounds x 2 compile modes).
  ASSERT_GE(programs, 1000u);
}

TEST(SimdEval, ConcurrentEvaluationsAgreeAcrossThreads) {
  // The dispatch slot is resolved lazily; hammer it from several threads
  // evaluating the same program and require identical outputs. (Under TSan
  // this also proves the once-per-process resolution is race-free.)
  PathGuard guard;
  simd::select_path("auto");
  common::Rng rng(31);
  GenerateConfig gen;
  gen.min_depth = 5;
  gen.max_depth = 5;
  const Tree tree = generate_full(rng, 5, gen);
  const CompiledProgram program = CompiledProgram::compile(tree);
  const FuzzBatch fb = make_batch(rng, 129);

  constexpr int kThreads = 4;
  std::vector<std::vector<double>> outs(kThreads,
                                        std::vector<double>(fb.batch.count));
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      std::vector<double> scratch;
      program.evaluate_batch(fb.batch, outs[t], scratch);
    });
  }
  for (auto& w : workers) w.join();
  for (int t = 1; t < kThreads; ++t) {
    for (std::size_t i = 0; i < fb.batch.count; ++i) {
      ASSERT_EQ(bits(outs[0][i]), bits(outs[t][i])) << "thread " << t;
    }
  }
}

}  // namespace
}  // namespace carbon::gp

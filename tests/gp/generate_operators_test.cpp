#include <gtest/gtest.h>

#include <set>

#include "carbon/common/rng.hpp"
#include "carbon/gp/generate.hpp"
#include "carbon/gp/operators.hpp"

namespace carbon::gp {
namespace {

TEST(Generate, FullTreesReachExactDepth) {
  common::Rng rng(1);
  for (int depth = 1; depth <= 6; ++depth) {
    for (int rep = 0; rep < 10; ++rep) {
      const Tree t = generate_full(rng, depth);
      ASSERT_TRUE(t.valid());
      ASSERT_EQ(t.depth(), depth);
      // A full binary tree of depth d has 2^d - 1 nodes.
      ASSERT_EQ(t.size(), (1u << depth) - 1);
    }
  }
}

TEST(Generate, GrowTreesRespectMaxDepth) {
  common::Rng rng(2);
  for (int rep = 0; rep < 100; ++rep) {
    const Tree t = generate_grow(rng, 5);
    ASSERT_TRUE(t.valid());
    ASSERT_LE(t.depth(), 5);
  }
}

TEST(Generate, GrowProducesVariedDepths) {
  common::Rng rng(3);
  std::set<int> depths;
  for (int rep = 0; rep < 200; ++rep) {
    depths.insert(generate_grow(rng, 6).depth());
  }
  EXPECT_GE(depths.size(), 3u);
}

TEST(Generate, RampedStaysInRange) {
  common::Rng rng(4);
  GenerateConfig cfg;
  cfg.min_depth = 2;
  cfg.max_depth = 5;
  for (int rep = 0; rep < 200; ++rep) {
    const Tree t = generate_ramped(rng, cfg);
    ASSERT_TRUE(t.valid());
    ASSERT_GE(t.depth(), 1);
    ASSERT_LE(t.depth(), 5);
  }
}

TEST(Generate, NoConstantsByDefault) {
  common::Rng rng(5);
  for (int rep = 0; rep < 50; ++rep) {
    const Tree t = generate_ramped(rng, {});
    for (const Node& n : t.nodes()) {
      ASSERT_NE(n.op, OpCode::kConst);
    }
  }
}

TEST(Generate, ConstantsAppearWhenEnabled) {
  common::Rng rng(6);
  GenerateConfig cfg;
  cfg.use_constants = true;
  bool saw_const = false;
  for (int rep = 0; rep < 100 && !saw_const; ++rep) {
    const Tree t = generate_ramped(rng, cfg);
    for (const Node& n : t.nodes()) saw_const |= n.op == OpCode::kConst;
  }
  EXPECT_TRUE(saw_const);
}

TEST(Generate, ConstantsRespectRange) {
  common::Rng rng(7);
  GenerateConfig cfg;
  cfg.use_constants = true;
  cfg.constant_min = -2.0;
  cfg.constant_max = 3.0;
  for (int rep = 0; rep < 100; ++rep) {
    const Tree t = generate_ramped(rng, cfg);
    for (const Node& n : t.nodes()) {
      if (n.op == OpCode::kConst) {
        ASSERT_GE(n.value, -2.0);
        ASSERT_LT(n.value, 3.0);
      }
    }
  }
}

TEST(Generate, InvalidDepthsThrow) {
  common::Rng rng(8);
  EXPECT_THROW((void)generate_full(rng, 0), std::invalid_argument);
  EXPECT_THROW((void)generate_grow(rng, 0), std::invalid_argument);
  GenerateConfig cfg;
  cfg.min_depth = 3;
  cfg.max_depth = 2;
  EXPECT_THROW((void)generate_ramped(rng, cfg), std::invalid_argument);
}

TEST(Generate, AllTerminalsEventuallyAppear) {
  common::Rng rng(9);
  std::set<std::uint8_t> seen;
  for (int rep = 0; rep < 300; ++rep) {
    const Tree t = generate_full(rng, 3);
    for (const Node& n : t.nodes()) {
      if (n.op == OpCode::kTerminal) seen.insert(n.terminal);
    }
  }
  EXPECT_EQ(seen.size(), kNumTerminals);
}

TEST(Operators, CrossoverProducesValidTreesWithinDepthCap) {
  common::Rng rng(10);
  OperatorConfig cfg;
  cfg.max_depth = 7;
  for (int rep = 0; rep < 200; ++rep) {
    const Tree a = generate_ramped(rng, cfg.generate);
    const Tree b = generate_ramped(rng, cfg.generate);
    const auto [ca, cb] = subtree_crossover(rng, a, b, cfg);
    ASSERT_TRUE(ca.valid());
    ASSERT_TRUE(cb.valid());
    ASSERT_LE(ca.depth(), cfg.max_depth);
    ASSERT_LE(cb.depth(), cfg.max_depth);
  }
}

TEST(Operators, CrossoverExchangesMaterial) {
  common::Rng rng(11);
  OperatorConfig cfg;
  int changed = 0;
  for (int rep = 0; rep < 50; ++rep) {
    const Tree a = generate_full(rng, 4);
    const Tree b = generate_full(rng, 4);
    const auto [ca, cb] = subtree_crossover(rng, a, b, cfg);
    changed += !(ca == a) || !(cb == b);
  }
  EXPECT_GT(changed, 40);  // nearly always something moves
}

TEST(Operators, TightDepthCapFallsBackToParents) {
  common::Rng rng(12);
  OperatorConfig cfg;
  cfg.max_depth = 2;  // deep offspring must be rejected
  const Tree a = generate_full(rng, 2);
  const Tree b = generate_full(rng, 2);
  for (int rep = 0; rep < 50; ++rep) {
    const auto [ca, cb] = subtree_crossover(rng, a, b, cfg);
    ASSERT_LE(ca.depth(), 2);
    ASSERT_LE(cb.depth(), 2);
  }
}

TEST(Operators, UniformMutationKeepsValidityAndCap) {
  common::Rng rng(13);
  OperatorConfig cfg;
  cfg.max_depth = 6;
  for (int rep = 0; rep < 200; ++rep) {
    const Tree t = generate_ramped(rng, cfg.generate);
    const Tree m = uniform_mutation(rng, t, cfg);
    ASSERT_TRUE(m.valid());
    ASSERT_LE(m.depth(), cfg.max_depth);
  }
}

TEST(Operators, UniformMutationChangesSomething) {
  common::Rng rng(14);
  OperatorConfig cfg;
  int changed = 0;
  for (int rep = 0; rep < 50; ++rep) {
    const Tree t = generate_full(rng, 4);
    changed += !(uniform_mutation(rng, t, cfg) == t);
  }
  EXPECT_GT(changed, 35);
}

TEST(Operators, PointMutationPreservesShape) {
  common::Rng rng(15);
  OperatorConfig cfg;
  for (int rep = 0; rep < 100; ++rep) {
    const Tree t = generate_full(rng, 4);
    const Tree m = point_mutation(rng, t, cfg);
    ASSERT_TRUE(m.valid());
    ASSERT_EQ(m.size(), t.size());
    ASSERT_EQ(m.depth(), t.depth());
  }
}

TEST(Operators, PickNodePrefersInternalNodes) {
  common::Rng rng(16);
  const Tree t = generate_full(rng, 5);  // 15 internal, 16 leaves
  int internal_picks = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    const std::size_t pos = pick_node(rng, t, 0.9);
    internal_picks += !t.nodes()[pos].is_leaf();
  }
  // With 0.9 bias, expect ~90% internal picks.
  EXPECT_GT(internal_picks, trials * 7 / 10);
}

TEST(Operators, PickNodeOnLeafReturnsRoot) {
  common::Rng rng(17);
  const Tree leaf = Tree::constant(1.0);
  EXPECT_EQ(pick_node(rng, leaf, 0.9), 0u);
}

}  // namespace
}  // namespace carbon::gp

// Long-horizon property test: thousands of chained variation operations must
// never produce an invalid tree, breach the depth cap, or corrupt evaluation.
#include <gtest/gtest.h>

#include "carbon/common/rng.hpp"
#include "carbon/gp/generate.hpp"
#include "carbon/gp/operators.hpp"

namespace carbon::gp {
namespace {

class OperatorChainTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OperatorChainTest, ThousandOperationsPreserveInvariants) {
  common::Rng rng(GetParam() * 101 + 7);
  OperatorConfig cfg;
  cfg.max_depth = 8;
  cfg.generate.use_constants = (GetParam() % 2 == 0);

  std::vector<Tree> pool;
  for (int i = 0; i < 12; ++i) {
    pool.push_back(generate_ramped(rng, cfg.generate));
  }

  const std::array<double, kNumTerminals> probe = {3.0, 7.0,  2.0,
                                                   50.0, 1.5, 0.25};
  for (int step = 0; step < 1000; ++step) {
    const std::size_t ia = rng.below(pool.size());
    const std::size_t ib = rng.below(pool.size());
    Tree child;
    switch (rng.below(3)) {
      case 0: {
        auto [ca, cb] = subtree_crossover(rng, pool[ia], pool[ib], cfg);
        child = rng.chance(0.5) ? std::move(ca) : std::move(cb);
        break;
      }
      case 1:
        child = uniform_mutation(rng, pool[ia], cfg);
        break;
      default:
        child = point_mutation(rng, pool[ia], cfg);
        break;
    }
    ASSERT_TRUE(child.valid()) << "step " << step;
    ASSERT_LE(child.depth(), cfg.max_depth) << "step " << step;
    const double value =
        child.evaluate(std::span<const double, kNumTerminals>(probe));
    ASSERT_TRUE(std::isfinite(value)) << "step " << step;
    // Simplification must agree with the original everywhere we probe.
    const Tree simple = simplify(child);
    ASSERT_NEAR(
        simple.evaluate(std::span<const double, kNumTerminals>(probe)),
        value, 1e-6)
        << child.to_string();
    pool[rng.below(pool.size())] = std::move(child);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OperatorChainTest,
                         ::testing::Range<std::uint64_t>(0, 4));

TEST(OperatorChain, RoundtripSurvivesVariation) {
  common::Rng rng(9);
  OperatorConfig cfg;
  Tree t = generate_full(rng, 4, cfg.generate);
  for (int step = 0; step < 100; ++step) {
    t = uniform_mutation(rng, t, cfg);
    const Tree back = parse(t.to_string());
    ASSERT_EQ(back.size(), t.size());
  }
}

}  // namespace
}  // namespace carbon::gp

#include "carbon/bcpop/score_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "carbon/gp/tree.hpp"

namespace carbon::bcpop {
namespace {

/// A tiny deterministic "program": CONST nodes whose values encode `tag`.
std::vector<gp::Node> make_nodes(double tag, std::size_t len = 3) {
  std::vector<gp::Node> nodes;
  for (std::size_t i = 0; i < len; ++i) {
    gp::Node n;
    n.op = gp::OpCode::kConst;
    n.value = tag + static_cast<double>(i);
    nodes.push_back(n);
  }
  return nodes;
}

Evaluation make_eval(double tag) {
  Evaluation e;
  e.ll_feasible = true;
  e.ul_objective = tag;
  e.ll_objective = tag * 2;
  e.lower_bound = tag / 2;
  e.gap_percent = tag / 10;
  e.selection = {1, 0, 1};
  return e;
}

TEST(ScoreCache, MissThenHitRoundTripsTheEvaluation) {
  ScoreCache cache(16, 1);
  const auto nodes = make_nodes(1.0);
  const std::vector<double> pricing = {3.0, 4.0};
  Evaluation out;
  EXPECT_FALSE(
      cache.lookup(nodes, pricing, EvalPurpose::kLowerOnly, &out));
  EXPECT_EQ(cache.misses(), 1);

  const Evaluation stored = make_eval(7.0);
  cache.insert(nodes, pricing, EvalPurpose::kLowerOnly, stored);
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.lookup(nodes, pricing, EvalPurpose::kLowerOnly, &out));
  EXPECT_EQ(out, stored);
  EXPECT_EQ(cache.hits(), 1);
}

TEST(ScoreCache, KeyDiscriminatesNodesPricingAndPurpose) {
  ScoreCache cache(16, 1);
  const auto nodes = make_nodes(1.0);
  const std::vector<double> pricing = {3.0, 4.0};
  cache.insert(nodes, pricing, EvalPurpose::kBoth, make_eval(1.0));

  Evaluation out;
  // Different tree, different pricing, different purpose: all miss.
  EXPECT_FALSE(
      cache.lookup(make_nodes(2.0), pricing, EvalPurpose::kBoth, &out));
  const std::vector<double> other = {3.0, 5.0};
  EXPECT_FALSE(cache.lookup(nodes, other, EvalPurpose::kBoth, &out));
  EXPECT_FALSE(
      cache.lookup(nodes, pricing, EvalPurpose::kLowerOnly, &out));
  // -0.0 != +0.0 bitwise: the key must distinguish them (scoring may not).
  const std::vector<double> zeros_pos = {0.0};
  const std::vector<double> zeros_neg = {-0.0};
  cache.insert(nodes, zeros_pos, EvalPurpose::kBoth, make_eval(2.0));
  EXPECT_FALSE(cache.lookup(nodes, zeros_neg, EvalPurpose::kBoth, &out));
  EXPECT_TRUE(cache.lookup(nodes, zeros_pos, EvalPurpose::kBoth, &out));
}

TEST(ScoreCache, EvictsLeastRecentlyUsedAtCapacity) {
  ScoreCache cache(2, 1);  // one shard => exact global LRU
  const std::vector<double> pricing = {1.0};
  cache.insert(make_nodes(1.0), pricing, EvalPurpose::kBoth, make_eval(1.0));
  cache.insert(make_nodes(2.0), pricing, EvalPurpose::kBoth, make_eval(2.0));
  Evaluation out;
  // Touch 1.0 so 2.0 is the LRU victim.
  ASSERT_TRUE(cache.lookup(make_nodes(1.0), pricing, EvalPurpose::kBoth, &out));
  cache.insert(make_nodes(3.0), pricing, EvalPurpose::kBoth, make_eval(3.0));
  EXPECT_EQ(cache.evictions(), 1);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(
      cache.lookup(make_nodes(2.0), pricing, EvalPurpose::kBoth, &out));
  EXPECT_TRUE(
      cache.lookup(make_nodes(1.0), pricing, EvalPurpose::kBoth, &out));
  EXPECT_TRUE(
      cache.lookup(make_nodes(3.0), pricing, EvalPurpose::kBoth, &out));
}

TEST(ScoreCache, ClearDropsEntriesButKeepsCounters) {
  ScoreCache cache(8, 2);
  const std::vector<double> pricing = {1.0};
  cache.insert(make_nodes(1.0), pricing, EvalPurpose::kBoth, make_eval(1.0));
  Evaluation out;
  ASSERT_TRUE(cache.lookup(make_nodes(1.0), pricing, EvalPurpose::kBoth, &out));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  // Counters are lifetime totals: checkpoint offsets depend on them
  // surviving clear() (docs/ALGORITHMS.md §14).
  EXPECT_EQ(cache.hits(), 1);
  EXPECT_FALSE(
      cache.lookup(make_nodes(1.0), pricing, EvalPurpose::kBoth, &out));
  EXPECT_EQ(cache.misses(), 1);
}

TEST(ScoreCache, DuplicateInsertRefreshesInsteadOfDuplicating) {
  ScoreCache cache(8, 1);
  const std::vector<double> pricing = {1.0};
  cache.insert(make_nodes(1.0), pricing, EvalPurpose::kBoth, make_eval(1.0));
  cache.insert(make_nodes(1.0), pricing, EvalPurpose::kBoth, make_eval(1.0));
  EXPECT_EQ(cache.size(), 1u);
}

TEST(ScoreCache, ConcurrentMixedTrafficStaysConsistent) {
  // Hammered under TSan by tools/run_sanitizers.sh: concurrent hits,
  // misses and capacity-pressure inserts across a tiny sharded cache.
  ScoreCache cache(8, 4);
  const std::vector<double> pricing = {2.0, 3.0};
  std::vector<std::thread> threads;
  threads.reserve(4);
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, &pricing, t] {
      for (int rep = 0; rep < 200; ++rep) {
        const double tag = static_cast<double>((t * 7 + rep) % 16);
        const auto nodes = make_nodes(tag);
        Evaluation out;
        if (!cache.lookup(nodes, pricing, EvalPurpose::kLowerOnly, &out)) {
          cache.insert(nodes, pricing, EvalPurpose::kLowerOnly,
                       make_eval(tag));
        } else {
          // A hit must return exactly what the key's inserter stored.
          ASSERT_EQ(out.ul_objective, tag);
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_LE(cache.size(), 8u);
  EXPECT_GT(cache.hits() + cache.misses(), 0);
}

}  // namespace
}  // namespace carbon::bcpop

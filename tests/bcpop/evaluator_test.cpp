#include "carbon/bcpop/evaluator.hpp"

#include <gtest/gtest.h>

#include "carbon/bilevel/gap.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/ea/binary_ops.hpp"
#include "carbon/gp/generate.hpp"
#include "carbon/gp/scoring.hpp"

namespace carbon::bcpop {
namespace {

Instance make_instance() {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = 30;
  cfg.num_services = 4;
  cfg.seed = 17;
  return Instance(cover::generate(cfg), /*num_owned=*/3);
}

Pricing mid_pricing(const Instance& inst) {
  Pricing p;
  for (const auto& b : inst.price_bounds()) p.push_back(0.5 * (b.lo + b.hi));
  return p;
}

gp::Tree cost_effectiveness_tree() {
  // QCOV / COST, the classic greedy, as a GP tree.
  return gp::Tree::apply(gp::OpCode::kDiv,
                         gp::Tree::terminal(gp::Terminal::kQcov),
                         gp::Tree::terminal(gp::Terminal::kCost));
}

TEST(Evaluator, HeuristicEvaluationIsFeasibleAndConsistent) {
  const Instance inst = make_instance();
  Evaluator eval(inst);
  const Pricing pricing = mid_pricing(inst);
  const Evaluation e =
      eval.evaluate_with_heuristic(pricing, cost_effectiveness_tree());
  ASSERT_TRUE(e.ll_feasible);
  // The customer basket covers demand under the priced instance.
  const cover::Instance ll = inst.lower_level_instance(pricing);
  EXPECT_TRUE(ll.feasible(e.selection));
  // Objectives consistent with the selection.
  EXPECT_NEAR(e.ll_objective, ll.selection_cost(e.selection), 1e-9);
  EXPECT_NEAR(e.ul_objective, inst.leader_revenue(pricing, e.selection),
              1e-9);
  // Gap consistent with Eq. (1).
  EXPECT_NEAR(e.gap_percent,
              bilevel::percent_gap(e.ll_objective, e.lower_bound), 1e-9);
  EXPECT_GE(e.ll_objective, e.lower_bound - 1e-6);
}

TEST(Evaluator, TreeAndScoreFunctionPathsAgree) {
  const Instance inst = make_instance();
  Evaluator eval(inst);
  const Pricing pricing = mid_pricing(inst);
  const gp::Tree tree = cost_effectiveness_tree();
  const Evaluation via_tree = eval.evaluate_with_heuristic(pricing, tree);
  const Evaluation via_fn =
      eval.evaluate_with_score(pricing, gp::make_score_function(tree));
  EXPECT_EQ(via_tree.selection, via_fn.selection);
  EXPECT_DOUBLE_EQ(via_tree.ll_objective, via_fn.ll_objective);
  EXPECT_DOUBLE_EQ(via_tree.gap_percent, via_fn.gap_percent);
}

TEST(Evaluator, SelectionRepairAchievesFeasibility) {
  const Instance inst = make_instance();
  Evaluator eval(inst);
  const Pricing pricing = mid_pricing(inst);
  common::Rng rng(3);
  for (int rep = 0; rep < 20; ++rep) {
    const auto basket =
        ea::random_binary_vector(rng, inst.num_bundles(), 0.1);
    const Evaluation e = eval.evaluate_with_selection(pricing, basket);
    ASSERT_TRUE(e.ll_feasible);
    const cover::Instance ll = inst.lower_level_instance(pricing);
    ASSERT_TRUE(ll.feasible(e.selection));
    // Repair only adds bundles: everything selected stays selected.
    for (std::size_t j = 0; j < basket.size(); ++j) {
      if (basket[j]) {
        ASSERT_EQ(e.selection[j], 1);
      }
    }
  }
}

TEST(Evaluator, AlreadyFeasibleSelectionUntouched) {
  const Instance inst = make_instance();
  Evaluator eval(inst);
  const Pricing pricing = mid_pricing(inst);
  const std::vector<std::uint8_t> everything(inst.num_bundles(), 1);
  const Evaluation e = eval.evaluate_with_selection(pricing, everything);
  ASSERT_TRUE(e.ll_feasible);
  EXPECT_EQ(e.selection, everything);
}

TEST(Evaluator, CountsEvaluationsByPurpose) {
  const Instance inst = make_instance();
  Evaluator eval(inst);
  const Pricing pricing = mid_pricing(inst);
  const gp::Tree tree = cost_effectiveness_tree();

  EXPECT_EQ(eval.ul_evaluations(), 0);
  EXPECT_EQ(eval.ll_evaluations(), 0);

  (void)eval.evaluate_with_heuristic(pricing, tree, EvalPurpose::kLowerOnly);
  EXPECT_EQ(eval.ul_evaluations(), 0);
  EXPECT_EQ(eval.ll_evaluations(), 1);

  (void)eval.evaluate_with_heuristic(pricing, tree, EvalPurpose::kBoth);
  EXPECT_EQ(eval.ul_evaluations(), 1);
  EXPECT_EQ(eval.ll_evaluations(), 2);
}

TEST(Evaluator, RelaxationIsMemoized) {
  const Instance inst = make_instance();
  Evaluator eval(inst);
  const Pricing pricing = mid_pricing(inst);
  (void)eval.relaxation(pricing);
  const long long solved_once = eval.relaxations_solved();
  (void)eval.relaxation(pricing);
  (void)eval.relaxation(pricing);
  EXPECT_EQ(eval.relaxations_solved(), solved_once);
  EXPECT_EQ(eval.relaxation_cache_hits(), 2);

  Pricing other = pricing;
  other[0] += 1.0;
  (void)eval.relaxation(other);
  EXPECT_EQ(eval.relaxations_solved(), solved_once + 1);
}

TEST(Evaluator, CacheEvictionStillCorrect) {
  const Instance inst = make_instance();
  Evaluator eval(inst, /*relaxation_cache_capacity=*/2);
  common::Rng rng(5);
  const Pricing base = mid_pricing(inst);
  const double lb0 = eval.relaxation(base)->lower_bound;
  for (int i = 0; i < 10; ++i) {
    Pricing p = base;
    p[0] = rng.uniform(0.0, 100.0);
    (void)eval.relaxation(p);
  }
  // Recomputed after eviction: same value.
  EXPECT_NEAR(eval.relaxation(base)->lower_bound, lb0, 1e-6);
}

TEST(Evaluator, EvictedRelaxationStaysValidWhileHeld) {
  // Regression: relaxation() used to return a reference into the cache map,
  // which dangled as soon as an eviction (or clear) dropped the entry. The
  // cache now hands out shared ownership, so a held relaxation survives any
  // amount of churn in a capacity-1 cache.
  const Instance inst = make_instance();
  Evaluator eval(inst, /*relaxation_cache_capacity=*/1);
  const Pricing base = mid_pricing(inst);
  const auto held = eval.relaxation(base);
  ASSERT_NE(held, nullptr);
  const double lb0 = held->lower_bound;
  const std::vector<double> fractional = held->relaxed_x;
  common::Rng rng(7);
  for (int i = 0; i < 20; ++i) {
    Pricing p = base;
    p[0] = rng.uniform(0.0, 100.0);
    (void)eval.relaxation(p);  // each call evicts the previous entry
  }
  EXPECT_DOUBLE_EQ(held->lower_bound, lb0);
  EXPECT_EQ(held->relaxed_x, fractional);
  // And a fresh solve of the same pricing agrees with the held copy.
  EXPECT_NEAR(eval.relaxation(base)->lower_bound, lb0, 1e-6);
}

TEST(Evaluator, LowerOnlyDoesNotComputeLeaderRevenue) {
  // EvalPurpose::kLowerOnly evaluations are not charged to the UL budget and
  // must not produce a leader objective: F is computed iff it is paid for.
  const Instance inst = make_instance();
  Evaluator eval(inst);
  const Pricing pricing = mid_pricing(inst);
  const Evaluation e = eval.evaluate_with_heuristic(
      pricing, cost_effectiveness_tree(), EvalPurpose::kLowerOnly);
  ASSERT_TRUE(e.ll_feasible);
  EXPECT_DOUBLE_EQ(e.ul_objective, 0.0);
  EXPECT_EQ(eval.ul_evaluations(), 0);
  EXPECT_EQ(eval.ll_evaluations(), 1);

  const Evaluation both = eval.evaluate_with_heuristic(
      pricing, cost_effectiveness_tree(), EvalPurpose::kBoth);
  EXPECT_DOUBLE_EQ(both.ul_objective,
                   inst.leader_revenue(pricing, both.selection));
  EXPECT_EQ(eval.ul_evaluations(), 1);
  EXPECT_EQ(eval.ll_evaluations(), 2);
}

TEST(Evaluator, LowerBoundRespondsToLeaderPrices) {
  const Instance inst = make_instance();
  Evaluator eval(inst);
  Pricing cheap(inst.num_owned(), 0.0);
  Pricing expensive;
  for (const auto& b : inst.price_bounds()) expensive.push_back(b.hi);
  const double lb_cheap = eval.relaxation(cheap)->lower_bound;
  const double lb_expensive = eval.relaxation(expensive)->lower_bound;
  // Raising our prices can only raise (or keep) the customer's optimum.
  EXPECT_LE(lb_cheap, lb_expensive + 1e-9);
}

TEST(Evaluator, ZeroPricedOwnedBundlesAreIrresistible) {
  const Instance inst = make_instance();
  Evaluator eval(inst);
  const Pricing freebies(inst.num_owned(), 0.0);
  const Evaluation e =
      eval.evaluate_with_heuristic(freebies, cost_effectiveness_tree());
  ASSERT_TRUE(e.ll_feasible);
  // Free bundles generate zero revenue no matter what.
  EXPECT_DOUBLE_EQ(e.ul_objective, 0.0);
}

TEST(Evaluator, GapIsNonNegativeAcrossRandomHeuristics) {
  const Instance inst = make_instance();
  Evaluator eval(inst);
  common::Rng rng(11);
  const Pricing pricing = mid_pricing(inst);
  for (int rep = 0; rep < 25; ++rep) {
    const gp::Tree tree = gp::generate_ramped(rng);
    const Evaluation e = eval.evaluate_with_heuristic(pricing, tree);
    ASSERT_TRUE(e.ll_feasible);
    ASSERT_GE(e.gap_percent, 0.0);
  }
}

}  // namespace
}  // namespace carbon::bcpop

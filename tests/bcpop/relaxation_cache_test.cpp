// Direct ShardedRelaxationCache coverage: eviction accounting, pinning
// under churn, and counter invariants under thread contention — the cases
// the evaluator-level tests only exercise incidentally.

#include "carbon/bcpop/relaxation_cache.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "carbon/common/thread_pool.hpp"

namespace carbon::bcpop {
namespace {

/// A synthetic solve whose result encodes its key, so a stale or corrupted
/// cache entry is detectable by value.
cover::Relaxation fake_solve(std::span<const double> pricing) {
  cover::Relaxation r;
  r.feasible = true;
  r.lower_bound = pricing.empty() ? 0.0 : pricing[0];
  return r;
}

std::vector<double> key(double k) { return {k, 2.0 * k}; }

TEST(ShardedRelaxationCache, CountsHitsSolvesAndEvictions) {
  ShardedRelaxationCache cache(/*capacity=*/4, /*num_shards=*/1);
  for (int i = 0; i < 16; ++i) {
    const auto k = key(i);
    const auto got = cache.get_or_compute(k, fake_solve);
    EXPECT_DOUBLE_EQ(got->lower_bound, static_cast<double>(i));
  }
  EXPECT_EQ(cache.solves(), 16);
  EXPECT_EQ(cache.hits(), 0);
  EXPECT_EQ(cache.evictions(), 12);
  EXPECT_EQ(cache.size(), 4u);
  // size() == solves() - evictions() absent clear().
  EXPECT_EQ(static_cast<long long>(cache.size()),
            cache.solves() - cache.evictions());

  // The 4 most recent keys are still resident; re-requesting them is free.
  for (int i = 12; i < 16; ++i) {
    (void)cache.get_or_compute(key(i), fake_solve);
  }
  EXPECT_EQ(cache.solves(), 16);
  EXPECT_EQ(cache.hits(), 4);
}

TEST(ShardedRelaxationCache, LruEvictsTheColdestEntry) {
  ShardedRelaxationCache cache(/*capacity=*/2, /*num_shards=*/1);
  (void)cache.get_or_compute(key(1), fake_solve);
  (void)cache.get_or_compute(key(2), fake_solve);
  (void)cache.get_or_compute(key(1), fake_solve);  // refresh 1
  (void)cache.get_or_compute(key(3), fake_solve);  // evicts 2
  EXPECT_EQ(cache.evictions(), 1);
  (void)cache.get_or_compute(key(1), fake_solve);  // still a hit
  EXPECT_EQ(cache.solves(), 3);
  EXPECT_EQ(cache.hits(), 2);
  (void)cache.get_or_compute(key(2), fake_solve);  // re-solve after eviction
  EXPECT_EQ(cache.solves(), 4);
}

TEST(ShardedRelaxationCache, PinnedEntriesSurviveEviction) {
  ShardedRelaxationCache cache(/*capacity=*/1, /*num_shards=*/1);
  const auto pinned = cache.get_or_compute(key(100), fake_solve);
  // Churn far past capacity; the pinned entry is evicted from the cache but
  // the handle must stay valid and unchanged.
  for (int i = 0; i < 32; ++i) {
    (void)cache.get_or_compute(key(i), fake_solve);
  }
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.evictions(), 32);
  EXPECT_DOUBLE_EQ(pinned->lower_bound, 100.0);
  EXPECT_TRUE(pinned->feasible);
}

TEST(ShardedRelaxationCache, ClearDropsEntriesWithoutCountingEvictions) {
  ShardedRelaxationCache cache(/*capacity=*/8, /*num_shards=*/2);
  for (int i = 0; i < 6; ++i) (void)cache.get_or_compute(key(i), fake_solve);
  const long long evictions_before = cache.evictions();
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.evictions(), evictions_before);
  // Counters persist; a re-request re-solves.
  (void)cache.get_or_compute(key(0), fake_solve);
  EXPECT_EQ(cache.solves(), 7);
}

TEST(ShardedRelaxationCache, OnceSemanticsUnderConcurrentSameKeyRequests) {
  ShardedRelaxationCache cache(/*capacity=*/4, /*num_shards=*/1);
  std::atomic<int> solve_calls{0};
  const auto slow_solve = [&](std::span<const double> pricing) {
    solve_calls.fetch_add(1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    return fake_solve(pricing);
  };
  common::ThreadPool pool(8);
  pool.parallel_for(16, [&](std::size_t) {
    const auto got = cache.get_or_compute(key(42), slow_solve);
    EXPECT_DOUBLE_EQ(got->lower_bound, 42.0);
  });
  EXPECT_EQ(solve_calls.load(), 1);
  EXPECT_EQ(cache.solves(), 1);
  EXPECT_EQ(cache.hits(), 15);
}

TEST(ShardedRelaxationCache, CounterInvariantsHoldUnderEvictionContention) {
  // Exercised under TSan by tools/run_sanitizers.sh: a capacity-2 cache
  // hammered by 8 threads over 24 keys forces constant eviction while other
  // threads pin and verify the evicted values.
  ShardedRelaxationCache cache(/*capacity=*/2, /*num_shards=*/1);
  constexpr int kThreads = 8;
  constexpr int kIters = 200;
  constexpr int kKeys = 24;
  common::ThreadPool pool(kThreads);
  pool.parallel_for(kThreads, [&](std::size_t t) {
    for (int i = 0; i < kIters; ++i) {
      const int k = static_cast<int>((t * 31 + static_cast<std::size_t>(i) * 7)
                                     % kKeys);
      const auto got = cache.get_or_compute(key(k), fake_solve);
      ASSERT_DOUBLE_EQ(got->lower_bound, static_cast<double>(k));
    }
  });
  EXPECT_EQ(cache.hits() + cache.solves(),
            static_cast<long long>(kThreads) * kIters);
  EXPECT_EQ(static_cast<long long>(cache.size()),
            cache.solves() - cache.evictions());
  EXPECT_LE(cache.size(), 2u);
}

TEST(ShardedRelaxationCache, ShardedCapacityIsSplitAcrossShards) {
  ShardedRelaxationCache cache(/*capacity=*/16, /*num_shards=*/4);
  EXPECT_EQ(cache.num_shards(), 4u);
  EXPECT_EQ(cache.shard_capacity(), 4u);
  for (int i = 0; i < 64; ++i) (void)cache.get_or_compute(key(i), fake_solve);
  EXPECT_LE(cache.size(), 16u);
  EXPECT_EQ(static_cast<long long>(cache.size()),
            cache.solves() - cache.evictions());
}

}  // namespace
}  // namespace carbon::bcpop

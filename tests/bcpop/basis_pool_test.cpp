// Tests for bcpop::BasisPool: the deterministic nearest-pricing selection
// (quantized distance + lowest-insertion-ordinal tie-break), exact-key
// replace-in-place, LRU eviction with select() recency, and the clear()
// contract (a cleared pool behaves exactly like a fresh one — the resume
// isolation discipline depends on it).

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "carbon/bcpop/basis_pool.hpp"

namespace carbon::bcpop {
namespace {

/// Distinguishable basis payloads: tag is recoverable from basic_vars[0].
lp::Basis tagged(std::size_t tag) {
  lp::Basis b;
  b.status = {static_cast<unsigned char>(tag & 0xff)};
  b.basic_vars = {tag};
  return b;
}

std::size_t tag_of(const lp::Basis* b) {
  return (b == nullptr || b->basic_vars.empty()) ? static_cast<std::size_t>(-1)
                                                 : b->basic_vars[0];
}

TEST(BasisPool, LpWarmNames) {
  EXPECT_STREQ(to_string(LpWarm::kBaseline), "baseline");
  EXPECT_STREQ(to_string(LpWarm::kPool), "pool");
}

TEST(BasisPool, EmptyPoolSelectsNothing) {
  BasisPool pool(4);
  const std::vector<double> q = {1.0, 2.0};
  EXPECT_EQ(pool.select(q), nullptr);
  EXPECT_EQ(pool.size(), 0u);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.evictions(), 0);
}

TEST(BasisPool, SelectsNearestKey) {
  BasisPool pool(8);
  pool.insert(std::vector<double>{0.0, 0.0}, tagged(100));
  pool.insert(std::vector<double>{10.0, 10.0}, tagged(200));
  pool.insert(std::vector<double>{-4.0, 3.0}, tagged(300));

  EXPECT_EQ(tag_of(pool.select(std::vector<double>{1.0, 1.0})), 100u);
  EXPECT_EQ(tag_of(pool.select(std::vector<double>{9.0, 11.0})), 200u);
  EXPECT_EQ(tag_of(pool.select(std::vector<double>{-4.1, 2.9})), 300u);
  EXPECT_EQ(pool.size(), 3u);
}

TEST(BasisPool, TieBreaksByLowestInsertionOrdinal) {
  BasisPool pool(8);
  // {-1} and {+1} are exactly equidistant from {0}; the first-inserted
  // entry must win regardless of storage order.
  pool.insert(std::vector<double>{1.0}, tagged(1));
  pool.insert(std::vector<double>{-1.0}, tagged(2));
  EXPECT_EQ(tag_of(pool.select(std::vector<double>{0.0})), 1u);
}

TEST(BasisPool, ExactKeyReplacesInPlaceKeepingOrdinal) {
  BasisPool pool(8);
  pool.insert(std::vector<double>{1.0}, tagged(1));
  pool.insert(std::vector<double>{-1.0}, tagged(2));
  // Re-inserting key {1} replaces the basis but keeps ordinal 0, so it
  // still wins the equidistant tie against ordinal 1.
  pool.insert(std::vector<double>{1.0}, tagged(77));
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(tag_of(pool.select(std::vector<double>{0.0})), 77u);
  EXPECT_EQ(pool.evictions(), 0);
}

TEST(BasisPool, EvictsLeastRecentlyUsedHonoringSelectTouch) {
  BasisPool pool(2);
  pool.insert(std::vector<double>{0.0}, tagged(1));    // A
  pool.insert(std::vector<double>{10.0}, tagged(2));   // B
  // Touch A: B becomes the LRU entry.
  EXPECT_EQ(tag_of(pool.select(std::vector<double>{0.0})), 1u);
  pool.insert(std::vector<double>{100.0}, tagged(3));  // C evicts B
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_EQ(pool.evictions(), 1);
  // Nearest to B's old key {10} is now A ({0}, distance 100) rather than
  // C ({100}, distance 8100): B is really gone.
  EXPECT_EQ(tag_of(pool.select(std::vector<double>{10.0})), 1u);

  // Without the touch, A (older ordinal, equal recency pattern) goes first.
  BasisPool pool2(2);
  pool2.insert(std::vector<double>{0.0}, tagged(1));   // A
  pool2.insert(std::vector<double>{10.0}, tagged(2));  // B
  pool2.insert(std::vector<double>{100.0}, tagged(3)); // C evicts A
  EXPECT_EQ(pool2.evictions(), 1);
  EXPECT_EQ(tag_of(pool2.select(std::vector<double>{0.0})), 2u);
}

TEST(BasisPool, ClearResetsToFreshPoolBehavior) {
  // Run the same select/insert script on a fresh pool and on a cleared
  // pool; every observable (selection outcomes, sizes, eviction count
  // deltas) must match — clear() must reset the ordinal and recency clocks,
  // not just drop entries.
  auto script = [](BasisPool& pool, long long eviction_base) {
    std::vector<std::size_t> trace;
    pool.insert(std::vector<double>{0.0}, tagged(1));
    pool.insert(std::vector<double>{10.0}, tagged(2));
    trace.push_back(tag_of(pool.select(std::vector<double>{4.0})));
    pool.insert(std::vector<double>{20.0}, tagged(3));  // capacity 2: evict
    trace.push_back(tag_of(pool.select(std::vector<double>{0.0})));
    trace.push_back(pool.size());
    trace.push_back(static_cast<std::size_t>(pool.evictions() - eviction_base));
    return trace;
  };

  BasisPool fresh(2);
  const std::vector<std::size_t> want = script(fresh, 0);

  BasisPool reused(2);
  reused.insert(std::vector<double>{5.0}, tagged(91));
  reused.insert(std::vector<double>{6.0}, tagged(92));
  reused.insert(std::vector<double>{7.0}, tagged(93));
  (void)reused.select(std::vector<double>{5.0});
  const long long evictions_before = reused.evictions();
  reused.clear();
  EXPECT_EQ(reused.size(), 0u);
  EXPECT_EQ(reused.select(std::vector<double>{5.0}), nullptr);
  EXPECT_EQ(script(reused, evictions_before), want);
}

TEST(BasisPool, MismatchedKeyLengthNeverWins) {
  BasisPool pool(4);
  pool.insert(std::vector<double>{1.0, 2.0, 3.0}, tagged(1));
  // A query of a different length cannot match the stored key.
  EXPECT_EQ(pool.select(std::vector<double>{1.0, 2.0}), nullptr);
  pool.insert(std::vector<double>{1.0, 2.0}, tagged(2));
  EXPECT_EQ(tag_of(pool.select(std::vector<double>{1.0, 2.0})), 2u);
}

}  // namespace
}  // namespace carbon::bcpop

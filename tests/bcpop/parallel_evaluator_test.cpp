#include "carbon/bcpop/parallel_evaluator.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "carbon/bcpop/evaluator.hpp"
#include "carbon/bcpop/relaxation_cache.hpp"
#include "carbon/cobra/cobra_solver.hpp"
#include "carbon/core/carbon_solver.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/ea/binary_ops.hpp"
#include "carbon/ea/real_ops.hpp"
#include "carbon/gp/generate.hpp"

namespace carbon::bcpop {
namespace {

Instance make_instance() {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = 30;
  cfg.num_services = 4;
  cfg.seed = 17;
  return Instance(cover::generate(cfg), /*num_owned=*/3);
}

std::vector<Pricing> random_pricings(const Instance& inst, std::size_t n,
                                     std::uint64_t seed) {
  common::Rng rng(seed);
  std::vector<Pricing> out;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ea::random_real_vector(rng, inst.price_bounds()));
  }
  return out;
}

void expect_same(const Evaluation& a, const Evaluation& b) {
  EXPECT_EQ(a.ll_feasible, b.ll_feasible);
  EXPECT_EQ(a.ul_objective, b.ul_objective);  // bitwise
  EXPECT_EQ(a.ll_objective, b.ll_objective);
  EXPECT_EQ(a.lower_bound, b.lower_bound);
  EXPECT_EQ(a.gap_percent, b.gap_percent);
  EXPECT_EQ(a.selection, b.selection);
}

TEST(ParallelEvaluator, HeuristicBatchMatchesSerialBitwise) {
  const Instance inst = make_instance();
  common::Rng rng(23);
  const auto pricings = random_pricings(inst, 12, 5);
  std::vector<gp::Tree> trees;
  for (int t = 0; t < 4; ++t) trees.push_back(gp::generate_ramped(rng));

  std::vector<HeuristicJob> jobs;
  for (const auto& tree : trees) {
    for (const auto& p : pricings) {
      jobs.push_back({p, &tree, EvalPurpose::kLowerOnly});
    }
  }

  Evaluator serial(inst);
  const std::vector<Evaluation> want = serial.evaluate_heuristic_batch(jobs);

  ParallelEvaluator par(inst, /*threads=*/4);
  const std::vector<Evaluation> got = par.evaluate_heuristic_batch(jobs);

  ASSERT_EQ(got.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expect_same(want[i], got[i]);
  }
}

TEST(ParallelEvaluator, SelectionBatchMatchesSerialBitwise) {
  const Instance inst = make_instance();
  const auto pricings = random_pricings(inst, 10, 9);
  common::Rng rng(31);
  std::vector<std::vector<std::uint8_t>> genomes;
  for (int g = 0; g < 10; ++g) {
    genomes.push_back(
        ea::random_binary_vector(rng, inst.num_bundles(), 0.2));
  }

  std::vector<SelectionJob> jobs;
  for (std::size_t i = 0; i < pricings.size(); ++i) {
    jobs.push_back({pricings[i], genomes[i], EvalPurpose::kBoth});
  }

  Evaluator serial(inst);
  const std::vector<Evaluation> want = serial.evaluate_selection_batch(jobs);

  ParallelEvaluator par(inst, /*threads=*/3);
  const std::vector<Evaluation> got = par.evaluate_selection_batch(jobs);

  ASSERT_EQ(got.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expect_same(want[i], got[i]);
  }
}

TEST(ParallelEvaluator, ResultsAreInSubmissionOrder) {
  const Instance inst = make_instance();
  const auto pricings = random_pricings(inst, 16, 41);
  const std::vector<std::uint8_t> everything(inst.num_bundles(), 1);

  std::vector<SelectionJob> jobs;
  for (const auto& p : pricings) {
    jobs.push_back({p, everything, EvalPurpose::kBoth});
  }
  ParallelEvaluator par(inst, /*threads=*/4);
  const auto got = par.evaluate_selection_batch(jobs);

  // Full basket is already feasible, so results[i] must report exactly the
  // revenue of pricings[i] — any permutation of the results would mismatch.
  ASSERT_EQ(got.size(), pricings.size());
  for (std::size_t i = 0; i < pricings.size(); ++i) {
    EXPECT_EQ(got[i].selection, everything);
    EXPECT_DOUBLE_EQ(got[i].ul_objective,
                     inst.leader_revenue(pricings[i], everything));
  }
}

TEST(ParallelEvaluator, CountersMatchSerialAndPurposeRules) {
  const Instance inst = make_instance();
  common::Rng rng(7);
  const gp::Tree tree = gp::generate_ramped(rng);
  const auto pricings = random_pricings(inst, 8, 3);

  std::vector<HeuristicJob> lower_jobs;
  std::vector<HeuristicJob> both_jobs;
  for (const auto& p : pricings) {
    lower_jobs.push_back({p, &tree, EvalPurpose::kLowerOnly});
    both_jobs.push_back({p, &tree, EvalPurpose::kBoth});
  }

  ParallelEvaluator par(inst, /*threads=*/4);
  (void)par.evaluate_heuristic_batch(lower_jobs);
  EXPECT_EQ(par.ul_evaluations(), 0);
  EXPECT_EQ(par.ll_evaluations(), 8);

  (void)par.evaluate_heuristic_batch(both_jobs);
  EXPECT_EQ(par.ul_evaluations(), 8);
  EXPECT_EQ(par.ll_evaluations(), 16);
}

TEST(ParallelEvaluator, CacheOnceSemantics) {
  // 8 distinct pricings, each submitted 16 times across a 4-thread batch:
  // once-semantics means exactly 8 solves, and every lookup is accounted for
  // as either a hit or a solve regardless of scheduling.
  const Instance inst = make_instance();
  const auto pricings = random_pricings(inst, 8, 13);
  const std::vector<std::uint8_t> everything(inst.num_bundles(), 1);

  std::vector<SelectionJob> jobs;
  for (int rep = 0; rep < 16; ++rep) {
    for (const auto& p : pricings) {
      jobs.push_back({p, everything, EvalPurpose::kLowerOnly});
    }
  }
  ParallelEvaluator par(inst, /*threads=*/4);
  (void)par.evaluate_selection_batch(jobs);

  EXPECT_EQ(par.relaxations_solved(), 8);
  EXPECT_EQ(par.relaxations_solved() + par.relaxation_cache_hits(),
            static_cast<long long>(jobs.size()));
  EXPECT_EQ(par.cache().size(), 8u);
}

TEST(ParallelEvaluator, ScalarCallsWorkAndShareTheCache) {
  const Instance inst = make_instance();
  // Cross-generation memoization off: this test pins the RELAXATION cache
  // (the score memo would answer the repeat before the relaxation lookup).
  ParallelEvaluator::Options opt;
  opt.threads = 2;
  opt.memo_xgen = false;
  ParallelEvaluator par(inst, opt);
  Evaluator serial(inst);
  serial.set_memo_xgen(false);
  const auto pricings = random_pricings(inst, 4, 77);
  common::Rng rng(19);
  const gp::Tree tree = gp::generate_ramped(rng);
  for (const auto& p : pricings) {
    expect_same(serial.evaluate_with_heuristic(p, tree),
                par.evaluate_with_heuristic(p, tree));
  }
  EXPECT_EQ(par.relaxations_solved(), 4);
  // A repeat is served from the cache.
  (void)par.evaluate_with_heuristic(pricings[0], tree);
  EXPECT_EQ(par.relaxations_solved(), 4);
  EXPECT_GE(par.relaxation_cache_hits(), 1);
}

TEST(ParallelEvaluator, ScalarRepeatIsServedByTheScoreMemo) {
  const Instance inst = make_instance();
  ParallelEvaluator par(inst, /*threads=*/2);
  Evaluator serial(inst);
  const auto pricings = random_pricings(inst, 4, 77);
  common::Rng rng(19);
  const gp::Tree tree = gp::generate_ramped(rng);
  for (const auto& p : pricings) {
    expect_same(serial.evaluate_with_heuristic(p, tree),
                par.evaluate_with_heuristic(p, tree));
  }
  EXPECT_EQ(par.relaxations_solved(), 4);
  const long long ll_before = par.ll_evaluations();
  // A repeat is answered by the cross-generation score cache without a new
  // relaxation solve OR lookup — but it still charges the LL budget.
  const Evaluation again = par.evaluate_with_heuristic(pricings[0], tree);
  expect_same(serial.evaluate_with_heuristic(pricings[0], tree), again);
  EXPECT_EQ(par.relaxations_solved(), 4);
  EXPECT_EQ(par.score_cache().hits(), 1);
  EXPECT_EQ(par.ll_evaluations(), ll_before + 1);
  EXPECT_EQ(par.backend_stats().score_cache_hits, 1);
}

TEST(ShardedRelaxationCache, CapacityOneChurnKeepsPinnedEntriesValid) {
  // Exercised under TSan by tools/run_sanitizers.sh: concurrent misses on a
  // capacity-1 cache force an eviction on almost every insert while other
  // threads still hold the evicted entries.
  const Instance inst = make_instance();
  ParallelEvaluator::Options opt;
  opt.threads = 4;
  opt.relaxation_cache_capacity = 1;
  opt.cache_shards = 1;
  ParallelEvaluator par(inst, opt);

  const auto pricings = random_pricings(inst, 32, 3);
  Evaluator reference(inst, /*relaxation_cache_capacity=*/64);
  std::vector<double> want;
  for (const auto& p : pricings) want.push_back(reference.relaxation(p)->lower_bound);

  const std::vector<std::uint8_t> everything(inst.num_bundles(), 1);
  std::vector<SelectionJob> jobs;
  for (int rep = 0; rep < 4; ++rep) {
    for (const auto& p : pricings) {
      jobs.push_back({p, everything, EvalPurpose::kLowerOnly});
    }
  }
  const auto got = par.evaluate_selection_batch(jobs);
  ASSERT_EQ(got.size(), jobs.size());
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_DOUBLE_EQ(got[i].lower_bound, want[i % pricings.size()]);
  }
  // hits + solves == lookups holds even with eviction churn.
  EXPECT_EQ(par.relaxations_solved() + par.relaxation_cache_hits(),
            static_cast<long long>(jobs.size()));
  EXPECT_LE(par.cache().size(), 1u);
}

// --- End-to-end determinism: N threads == serial, bit for bit -------------

core::CarbonConfig small_carbon_config() {
  core::CarbonConfig cfg;
  cfg.ul_population_size = 8;
  cfg.ul_archive_size = 8;
  cfg.gp_population_size = 8;
  cfg.gp_archive_size = 8;
  cfg.heuristic_sample_size = 2;
  cfg.archive_reinjection = 2;
  cfg.ul_eval_budget = 40;
  cfg.ll_eval_budget = 400;
  cfg.seed = 99;
  return cfg;
}

void expect_same_run(const core::RunResult& a, const core::RunResult& b) {
  EXPECT_EQ(a.best_ul_objective, b.best_ul_objective);  // bitwise
  EXPECT_EQ(a.best_gap, b.best_gap);
  EXPECT_EQ(a.best_pricing, b.best_pricing);
  EXPECT_EQ(a.generations, b.generations);
  EXPECT_EQ(a.ul_evaluations, b.ul_evaluations);
  EXPECT_EQ(a.ll_evaluations, b.ll_evaluations);
  EXPECT_EQ(a.best_evaluation.selection, b.best_evaluation.selection);
  EXPECT_EQ(a.best_evaluation.gap_percent, b.best_evaluation.gap_percent);
}

TEST(ParallelEvaluator, CarbonRunIsThreadCountInvariant) {
  const Instance inst = make_instance();

  core::CarbonConfig serial_cfg = small_carbon_config();
  serial_cfg.eval_threads = 1;
  const core::CarbonResult serial =
      core::CarbonSolver(inst, serial_cfg).run();

  core::CarbonConfig par_cfg = small_carbon_config();
  par_cfg.eval_threads = 4;
  const core::CarbonResult parallel =
      core::CarbonSolver(inst, par_cfg).run();

  expect_same_run(serial, parallel);
  EXPECT_EQ(serial.best_heuristic, parallel.best_heuristic);
  EXPECT_EQ(serial.best_heuristic_gap, parallel.best_heuristic_gap);
}

TEST(ParallelEvaluator, PessimisticCarbonRunIsThreadCountInvariant) {
  const Instance inst = make_instance();

  core::CarbonConfig cfg = small_carbon_config();
  cfg.stance = core::Stance::kPessimistic;
  cfg.follower_ensemble = 2;

  cfg.eval_threads = 1;
  const core::CarbonResult serial = core::CarbonSolver(inst, cfg).run();
  cfg.eval_threads = 4;
  const core::CarbonResult parallel = core::CarbonSolver(inst, cfg).run();

  expect_same_run(serial, parallel);
}

TEST(ParallelEvaluator, CobraRunIsThreadCountInvariant) {
  const Instance inst = make_instance();

  cobra::CobraConfig cfg;
  cfg.ul_population_size = 8;
  cfg.ll_population_size = 8;
  cfg.ul_archive_size = 8;
  cfg.ll_archive_size = 8;
  cfg.upper_phase_generations = 2;
  cfg.lower_phase_generations = 2;
  cfg.coevolution_pairs = 4;
  cfg.archive_reinjection = 2;
  cfg.ul_eval_budget = 80;
  cfg.ll_eval_budget = 800;
  cfg.seed = 4;

  cfg.eval_threads = 1;
  const core::RunResult serial = cobra::CobraSolver(inst, cfg).run();
  cfg.eval_threads = 4;
  const core::RunResult parallel = cobra::CobraSolver(inst, cfg).run();

  expect_same_run(serial, parallel);
}

// --- Compiled scoring: same bits as the interpreter, fewer solves ---------

TEST(CompiledScoring, EvaluatorMatchesInterpreterBitwise) {
  const Instance inst = make_instance();
  common::Rng rng(61);
  gp::GenerateConfig gen;
  gen.min_depth = 2;
  gen.max_depth = 7;
  const auto pricings = random_pricings(inst, 6, 21);

  Evaluator compiled(inst);
  Evaluator interpreted(inst);
  interpreted.set_compiled_scoring(false);
  ASSERT_TRUE(compiled.compiled_scoring());

  for (int t = 0; t < 10; ++t) {
    gen.use_constants = (t % 2 == 0);
    const gp::Tree tree = gp::generate_ramped(rng, gen);
    for (const auto& p : pricings) {
      expect_same(interpreted.evaluate_with_heuristic(p, tree),
                  compiled.evaluate_with_heuristic(p, tree));
    }
  }
}

TEST(CompiledScoring, CarbonRunIsToggleInvariant) {
  // The acceptance bar of the compiled path: fixed-seed CARBON trajectories
  // are bit-identical with compiled scoring on vs off, serial and parallel.
  const Instance inst = make_instance();
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    core::CarbonConfig on = small_carbon_config();
    on.eval_threads = threads;
    on.compiled_scoring = true;
    core::CarbonConfig off = on;
    off.compiled_scoring = false;
    const core::CarbonResult want = core::CarbonSolver(inst, off).run();
    const core::CarbonResult got = core::CarbonSolver(inst, on).run();
    expect_same_run(want, got);
    EXPECT_EQ(want.best_heuristic, got.best_heuristic);
    EXPECT_EQ(want.best_heuristic_gap, got.best_heuristic_gap);
  }
}

TEST(CompiledScoring, CobraRunIsToggleInvariant) {
  const Instance inst = make_instance();
  cobra::CobraConfig cfg;
  cfg.ul_population_size = 8;
  cfg.ll_population_size = 8;
  cfg.ul_archive_size = 8;
  cfg.ll_archive_size = 8;
  cfg.upper_phase_generations = 2;
  cfg.lower_phase_generations = 2;
  cfg.coevolution_pairs = 4;
  cfg.archive_reinjection = 2;
  cfg.ul_eval_budget = 80;
  cfg.ll_eval_budget = 800;
  cfg.seed = 4;

  cfg.compiled_scoring = false;
  const core::RunResult want = cobra::CobraSolver(inst, cfg).run();
  cfg.compiled_scoring = true;
  const core::RunResult got = cobra::CobraSolver(inst, cfg).run();
  expect_same_run(want, got);
}

TEST(CompiledScoring, BatchMemoDeduplicatesButStillCharges) {
  const Instance inst = make_instance();
  common::Rng rng(83);
  const gp::Tree tree = gp::generate_ramped(rng);
  const gp::Tree copy = tree;  // same content, different object
  const auto pricings = random_pricings(inst, 3, 11);

  // 3 pricings x 2 aliases of one tree x 4 repeats = 24 jobs, 3 unique keys.
  std::vector<HeuristicJob> jobs;
  for (int rep = 0; rep < 4; ++rep) {
    for (const auto& p : pricings) {
      jobs.push_back({p, &tree, EvalPurpose::kLowerOnly});
      jobs.push_back({p, &copy, EvalPurpose::kLowerOnly});
    }
  }

  ParallelEvaluator par(inst, /*threads=*/4);
  const auto got = par.evaluate_heuristic_batch(jobs);
  ASSERT_EQ(got.size(), jobs.size());
  // Budget counters charge every submitted job; the memo only avoids
  // redundant solves.
  EXPECT_EQ(par.ll_evaluations(), static_cast<long long>(jobs.size()));
  EXPECT_EQ(par.heuristic_dedup_hits(),
            static_cast<long long>(jobs.size()) - 3);
  // All duplicates share the representative's bits.
  Evaluator serial(inst);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    expect_same(serial.evaluate_with_heuristic(jobs[i].pricing, tree,
                                               jobs[i].purpose),
                got[i]);
  }
}

TEST(CompiledScoring, MemoMergesCanonicallyEqualTrees) {
  const Instance inst = make_instance();
  const gp::Tree a = gp::parse("(add COST QSUM)");
  const gp::Tree b = gp::parse("(add QSUM COST)");  // commuted twin
  const auto pricings = random_pricings(inst, 2, 29);

  std::vector<HeuristicJob> jobs;
  for (const auto& p : pricings) {
    jobs.push_back({p, &a, EvalPurpose::kLowerOnly});
    jobs.push_back({p, &b, EvalPurpose::kLowerOnly});
  }

  // Compiled on: the canonical forms coincide, so each pricing costs one
  // solve. Off: content differs, no merge.
  Evaluator compiled(inst);
  (void)compiled.evaluate_heuristic_batch(jobs);
  EXPECT_EQ(compiled.heuristic_dedup_hits(), 2);

  Evaluator interpreted(inst);
  interpreted.set_compiled_scoring(false);
  (void)interpreted.evaluate_heuristic_batch(jobs);
  EXPECT_EQ(interpreted.heuristic_dedup_hits(), 0);
}

TEST(CompiledScoring, MixedDuplicateAndUniqueJobsAccountExactly) {
  // A batch interleaving unique (tree, pricing) pairs with duplicates at
  // several multiplicities: dedup must charge every job to the budget but
  // count exactly jobs - unique memo hits, serial and parallel alike.
  const Instance inst = make_instance();
  common::Rng rng(53);
  std::vector<gp::Tree> trees;
  for (int t = 0; t < 3; ++t) trees.push_back(gp::generate_ramped(rng));
  const auto pricings = random_pricings(inst, 4, 19);

  std::vector<HeuristicJob> jobs;
  std::size_t unique = 0;
  for (std::size_t t = 0; t < trees.size(); ++t) {
    for (std::size_t p = 0; p < pricings.size(); ++p) {
      // Multiplicity 1, 2, or 3 depending on the pair.
      const int copies = 1 + static_cast<int>((t + p) % 3);
      for (int c = 0; c < copies; ++c) {
        jobs.push_back({pricings[p], &trees[t], EvalPurpose::kLowerOnly});
      }
      ++unique;
    }
  }
  ASSERT_GT(jobs.size(), unique);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    ParallelEvaluator par(inst, threads);
    const auto got = par.evaluate_heuristic_batch(jobs);
    ASSERT_EQ(got.size(), jobs.size());
    EXPECT_EQ(par.ll_evaluations(), static_cast<long long>(jobs.size()));
    EXPECT_EQ(par.heuristic_dedup_hits(),
              static_cast<long long>(jobs.size() - unique));
    // A second identical batch starts a fresh memo: same hit count again.
    (void)par.evaluate_heuristic_batch(jobs);
    EXPECT_EQ(par.heuristic_dedup_hits(),
              2 * static_cast<long long>(jobs.size() - unique));
  }
}

TEST(BackendStats, MirrorsTheIndividualCountersOnBothEvaluators) {
  const Instance inst = make_instance();
  common::Rng rng(59);
  const gp::Tree tree = gp::generate_ramped(rng);
  const auto pricings = random_pricings(inst, 6, 37);

  std::vector<HeuristicJob> jobs;
  for (int rep = 0; rep < 3; ++rep) {
    for (const auto& p : pricings) {
      jobs.push_back({p, &tree, EvalPurpose::kLowerOnly});
    }
  }

  Evaluator serial(inst);
  (void)serial.evaluate_heuristic_batch(jobs);
  const BackendStats ss = serial.backend_stats();
  EXPECT_EQ(ss.relaxation_cache_hits, serial.relaxation_cache_hits());
  EXPECT_EQ(ss.relaxation_cache_misses, serial.relaxations_solved());
  EXPECT_EQ(ss.heuristic_dedup_hits, serial.heuristic_dedup_hits());
  EXPECT_EQ(ss.relaxation_cache_evictions, 0);
  EXPECT_GT(ss.heuristic_dedup_hits, 0);

  ParallelEvaluator par(inst, /*threads=*/4);
  (void)par.evaluate_heuristic_batch(jobs);
  const BackendStats ps = par.backend_stats();
  EXPECT_EQ(ps.relaxation_cache_hits, par.relaxation_cache_hits());
  EXPECT_EQ(ps.relaxation_cache_misses, par.relaxations_solved());
  EXPECT_EQ(ps.heuristic_dedup_hits, par.heuristic_dedup_hits());
  // Same workload => same backend accounting as the serial evaluator.
  EXPECT_EQ(ps.relaxation_cache_misses, ss.relaxation_cache_misses);
  EXPECT_EQ(ps.heuristic_dedup_hits, ss.heuristic_dedup_hits);
}

TEST(BackendStats, ReportsEvictionsUnderATinyCache) {
  const Instance inst = make_instance();
  ParallelEvaluator::Options opt;
  opt.threads = 4;
  opt.relaxation_cache_capacity = 1;
  opt.cache_shards = 1;
  ParallelEvaluator par(inst, opt);

  const auto pricings = random_pricings(inst, 16, 67);
  const std::vector<std::uint8_t> everything(inst.num_bundles(), 1);
  std::vector<SelectionJob> jobs;
  for (const auto& p : pricings) {
    jobs.push_back({p, everything, EvalPurpose::kLowerOnly});
  }
  (void)par.evaluate_selection_batch(jobs);

  const BackendStats s = par.backend_stats();
  EXPECT_GT(s.relaxation_cache_evictions, 0);
  EXPECT_EQ(s.relaxation_cache_evictions, par.cache().evictions());
  EXPECT_EQ(static_cast<long long>(par.cache().size()),
            s.relaxation_cache_misses - s.relaxation_cache_evictions);
}

TEST(CompiledScoring, ConcurrentBatchesAreRaceFree) {
  // Exercised under TSan by tools/run_sanitizers.sh: dedup planning happens
  // on the submitting thread while the pool runs the unique jobs, and the
  // per-context register scratch must never be shared between workers.
  const Instance inst = make_instance();
  common::Rng rng(97);
  std::vector<gp::Tree> trees;
  for (int t = 0; t < 3; ++t) trees.push_back(gp::generate_ramped(rng));
  const auto pricings = random_pricings(inst, 6, 43);

  std::vector<HeuristicJob> jobs;
  for (const auto& tree : trees) {
    for (const auto& p : pricings) {
      jobs.push_back({p, &tree, EvalPurpose::kLowerOnly});
      jobs.push_back({p, &tree, EvalPurpose::kLowerOnly});  // memo duplicate
    }
  }
  ParallelEvaluator par(inst, /*threads=*/4);
  std::vector<Evaluation> first;
  for (int round = 0; round < 4; ++round) {
    auto got = par.evaluate_heuristic_batch(jobs);
    if (round == 0) {
      first = std::move(got);
    } else {
      ASSERT_EQ(got.size(), first.size());
      for (std::size_t i = 0; i < got.size(); ++i) {
        expect_same(first[i], got[i]);
      }
    }
  }
  EXPECT_GT(par.heuristic_dedup_hits(), 0);
}

}  // namespace
}  // namespace carbon::bcpop

#include "carbon/bcpop/instance.hpp"

#include <gtest/gtest.h>

#include "carbon/cover/generator.hpp"

namespace carbon::bcpop {
namespace {

Instance make(std::size_t owned = 3, double cap = 2.0) {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = 20;
  cfg.num_services = 4;
  cfg.seed = 5;
  return Instance(cover::generate(cfg), owned, cap);
}

TEST(BcpopInstance, BasicShape) {
  const Instance inst = make();
  EXPECT_EQ(inst.num_bundles(), 20u);
  EXPECT_EQ(inst.num_services(), 4u);
  EXPECT_EQ(inst.num_owned(), 3u);
  EXPECT_EQ(inst.price_bounds().size(), 3u);
}

TEST(BcpopInstance, PriceBoundsFollowCompetitorMean) {
  const Instance inst = make(3, 2.0);
  const double cap = 2.0 * inst.mean_competitor_price();
  for (const auto& b : inst.price_bounds()) {
    EXPECT_DOUBLE_EQ(b.lo, 0.0);
    EXPECT_DOUBLE_EQ(b.hi, cap);
  }
}

TEST(BcpopInstance, MeanCompetitorPriceExcludesOwned) {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = 4;
  cfg.num_services = 2;
  cfg.seed = 1;
  cover::Instance market = cover::generate(cfg);
  market.set_cost(0, 1000.0);  // owned: must not affect the mean
  market.set_cost(1, 10.0);
  market.set_cost(2, 20.0);
  market.set_cost(3, 30.0);
  const Instance inst(std::move(market), 1);
  EXPECT_DOUBLE_EQ(inst.mean_competitor_price(), 20.0);
}

TEST(BcpopInstance, LowerLevelInstanceSubstitutesLeaderPrices) {
  const Instance inst = make();
  const Pricing pricing = {1.0, 2.0, 3.0};
  const cover::Instance ll = inst.lower_level_instance(pricing);
  EXPECT_DOUBLE_EQ(ll.cost(0), 1.0);
  EXPECT_DOUBLE_EQ(ll.cost(1), 2.0);
  EXPECT_DOUBLE_EQ(ll.cost(2), 3.0);
  // Competitor prices untouched.
  EXPECT_DOUBLE_EQ(ll.cost(3), inst.market().cost(3));
  // Quantities untouched.
  EXPECT_EQ(ll.quantity(0, 0), inst.market().quantity(0, 0));
}

TEST(BcpopInstance, LeaderRevenueCountsOnlyOwnedPurchases) {
  const Instance inst = make();
  const Pricing pricing = {10.0, 20.0, 30.0};
  std::vector<std::uint8_t> sel(inst.num_bundles(), 0);
  sel[0] = 1;        // owned
  sel[2] = 1;        // owned
  sel[5] = 1;        // competitor
  sel[10] = 1;       // competitor
  EXPECT_DOUBLE_EQ(inst.leader_revenue(pricing, sel), 40.0);
}

TEST(BcpopInstance, NoPurchasesNoRevenue) {
  const Instance inst = make();
  const Pricing pricing = {10.0, 20.0, 30.0};
  const std::vector<std::uint8_t> sel(inst.num_bundles(), 0);
  EXPECT_DOUBLE_EQ(inst.leader_revenue(pricing, sel), 0.0);
}

TEST(BcpopInstance, ConstructorValidation) {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = 10;
  cfg.num_services = 2;
  EXPECT_THROW(Instance(cover::generate(cfg), 0), std::invalid_argument);
  EXPECT_THROW(Instance(cover::generate(cfg), 10), std::invalid_argument);
  EXPECT_THROW(Instance(cover::generate(cfg), 3, -1.0),
               std::invalid_argument);
}

TEST(BcpopInstance, PaperFactorySetsTenPercentOwnership) {
  const Instance inst = make_paper_bcpop(0);
  EXPECT_EQ(inst.num_bundles(), 100u);
  EXPECT_EQ(inst.num_owned(), 10u);
  const Instance big = make_paper_bcpop(8);
  EXPECT_EQ(big.num_bundles(), 500u);
  EXPECT_EQ(big.num_owned(), 50u);
}

}  // namespace
}  // namespace carbon::bcpop

#include "carbon/bcpop/multi_follower.hpp"

#include <gtest/gtest.h>

#include "carbon/cobra/cobra_solver.hpp"
#include "carbon/core/carbon_solver.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/ea/binary_ops.hpp"
#include "carbon/gp/scoring.hpp"

namespace carbon::bcpop {
namespace {

Instance base_market() {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = 30;
  cfg.num_services = 4;
  cfg.seed = 61;
  return Instance(cover::generate(cfg), 3);
}

gp::Tree ce_tree() {
  return gp::Tree::apply(gp::OpCode::kDiv,
                         gp::Tree::terminal(gp::Terminal::kQcov),
                         gp::Tree::terminal(gp::Terminal::kCost));
}

TEST(MultiFollower, FactoryBuildsRequestedFollowers) {
  const auto problem = make_multi_follower(base_market(), 4, /*seed=*/3);
  EXPECT_EQ(problem.num_followers(), 4u);
  EXPECT_EQ(problem.num_bundles(), 30u);
  // Follower 0 keeps the base demands.
  const Instance base = base_market();
  for (std::size_t k = 0; k < 4; ++k) {
    EXPECT_EQ(problem.follower(0).market().demand(k),
              base.market().demand(k));
  }
  // Other followers differ somewhere.
  bool any_diff = false;
  for (std::size_t k = 0; k < 4; ++k) {
    any_diff |= problem.follower(1).market().demand(k) !=
                problem.follower(0).market().demand(k);
  }
  EXPECT_TRUE(any_diff);
}

TEST(MultiFollower, SingleFollowerMatchesPlainEvaluator) {
  const auto problem = make_multi_follower(base_market(), 1);
  MultiFollowerEvaluator multi(problem);
  const Instance plain = base_market();
  Evaluator single(plain);

  common::Rng rng(9);
  const auto pricing = ea::random_real_vector(rng, plain.price_bounds());
  const auto a = multi.evaluate_with_heuristic(pricing, ce_tree());
  const auto b = single.evaluate_with_heuristic(pricing, ce_tree());
  EXPECT_DOUBLE_EQ(a.ul_objective, b.ul_objective);
  EXPECT_DOUBLE_EQ(a.ll_objective, b.ll_objective);
  EXPECT_DOUBLE_EQ(a.gap_percent, b.gap_percent);
  EXPECT_EQ(a.selection, b.selection);
}

TEST(MultiFollower, AggregatesAreSumsOfBreakdown) {
  const auto problem = make_multi_follower(base_market(), 3, 5);
  MultiFollowerEvaluator eval(problem);
  common::Rng rng(1);
  const auto pricing =
      ea::random_real_vector(rng, problem.price_bounds());
  const auto total = eval.evaluate_with_heuristic(pricing, ce_tree());
  const auto& parts = eval.last_breakdown();
  ASSERT_EQ(parts.size(), 3u);
  double f_sum = 0.0;
  double a_sum = 0.0;
  double lb_sum = 0.0;
  for (const auto& e : parts) {
    EXPECT_TRUE(e.ll_feasible);
    f_sum += e.ul_objective;
    a_sum += e.ll_objective;
    lb_sum += e.lower_bound;
  }
  EXPECT_NEAR(total.ul_objective, f_sum, 1e-9);
  EXPECT_NEAR(total.ll_objective, a_sum, 1e-9);
  EXPECT_NEAR(total.lower_bound, lb_sum, 1e-9);
  EXPECT_EQ(total.selection.size(), 3u * problem.num_bundles());
}

TEST(MultiFollower, CountersChargePerFollower) {
  const auto problem = make_multi_follower(base_market(), 3, 5);
  MultiFollowerEvaluator eval(problem);
  common::Rng rng(1);
  const auto pricing = ea::random_real_vector(rng, problem.price_bounds());
  (void)eval.evaluate_with_heuristic(pricing, ce_tree(),
                                     EvalPurpose::kLowerOnly);
  EXPECT_EQ(eval.ll_evaluations(), 3);
  EXPECT_EQ(eval.ul_evaluations(), 0);
  (void)eval.evaluate_with_heuristic(pricing, ce_tree(), EvalPurpose::kBoth);
  EXPECT_EQ(eval.ll_evaluations(), 6);
  EXPECT_EQ(eval.ul_evaluations(), 1);
}

TEST(MultiFollower, SelectionGenomeIsSlicedPerFollower) {
  const auto problem = make_multi_follower(base_market(), 2, 5);
  MultiFollowerEvaluator eval(problem);
  common::Rng rng(2);
  const auto pricing = ea::random_real_vector(rng, problem.price_bounds());
  const auto genome = ea::random_binary_vector(rng, eval.genome_length(), 0.4);
  const auto total = eval.evaluate_with_selection(pricing, genome);
  ASSERT_TRUE(total.ll_feasible);
  const auto& parts = eval.last_breakdown();
  ASSERT_EQ(parts.size(), 2u);
  // Repair only adds: every genome bit set stays set in the right block.
  const std::size_t m = problem.num_bundles();
  for (std::size_t f = 0; f < 2; ++f) {
    for (std::size_t j = 0; j < m; ++j) {
      if (genome[f * m + j]) {
        EXPECT_EQ(parts[f].selection[j], 1);
      }
    }
  }
}

TEST(MultiFollower, ShortGenomeTreatedAsEmptyBaskets) {
  const auto problem = make_multi_follower(base_market(), 2, 5);
  MultiFollowerEvaluator eval(problem);
  common::Rng rng(2);
  const auto pricing = ea::random_real_vector(rng, problem.price_bounds());
  const std::vector<std::uint8_t> empty;
  const auto total = eval.evaluate_with_selection(pricing, empty);
  EXPECT_TRUE(total.ll_feasible);  // repair builds full covers
}

TEST(MultiFollower, RejectsBadDemandVectors) {
  EXPECT_THROW(MultiFollowerProblem(base_market(), {{1, 2}}),
               std::invalid_argument);
  EXPECT_THROW(MultiFollowerProblem(base_market(),
                                    {{1000000, 1000000, 1000000, 1000000}}),
               std::invalid_argument);
  EXPECT_THROW((void)make_multi_follower(base_market(), 0),
               std::invalid_argument);
}

TEST(MultiFollower, CarbonSolverRunsOnMultiFollowerMarket) {
  const auto problem = make_multi_follower(base_market(), 3, 5);
  MultiFollowerEvaluator eval(problem);
  core::CarbonConfig cfg;
  cfg.ul_population_size = 10;
  cfg.gp_population_size = 10;
  cfg.ul_eval_budget = 60;
  cfg.ll_eval_budget = 600;
  cfg.heuristic_sample_size = 2;
  cfg.seed = 7;
  const core::CarbonResult r = core::CarbonSolver(eval, cfg).run();
  ASSERT_TRUE(r.best_evaluation.ll_feasible);
  EXPECT_GT(r.best_ul_objective, 0.0);
  EXPECT_EQ(r.best_evaluation.selection.size(),
            3u * problem.num_bundles());
  // Budgets relative to the evaluator's entry state.
  EXPECT_LE(r.ul_evaluations, cfg.ul_eval_budget + 10);
}

TEST(MultiFollower, CobraSolverRunsOnMultiFollowerMarket) {
  const auto problem = make_multi_follower(base_market(), 2, 5);
  MultiFollowerEvaluator eval(problem);
  cobra::CobraConfig cfg;
  cfg.ul_population_size = 8;
  cfg.ll_population_size = 8;
  cfg.ul_eval_budget = 100;
  cfg.ll_eval_budget = 400;
  cfg.seed = 7;
  const core::RunResult r = cobra::CobraSolver(eval, cfg).run();
  ASSERT_TRUE(r.best_evaluation.ll_feasible);
  EXPECT_GT(r.best_ul_objective, 0.0);
}

TEST(MultiFollower, MoreFollowersMoreRevenuePotential) {
  // With the same pricing, revenue over K followers is the sum of K
  // non-negative per-follower revenues: it cannot shrink when followers
  // are added (follower 0 is shared).
  const auto one = make_multi_follower(base_market(), 1, 5);
  const auto three = make_multi_follower(base_market(), 3, 5);
  MultiFollowerEvaluator e1(one);
  MultiFollowerEvaluator e3(three);
  common::Rng rng(4);
  for (int rep = 0; rep < 5; ++rep) {
    const auto pricing = ea::random_real_vector(rng, one.price_bounds());
    const auto r1 = e1.evaluate_with_heuristic(pricing, ce_tree());
    const auto r3 = e3.evaluate_with_heuristic(pricing, ce_tree());
    EXPECT_GE(r3.ul_objective, r1.ul_objective - 1e-9);
  }
}

}  // namespace
}  // namespace carbon::bcpop

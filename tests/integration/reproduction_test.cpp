// Integration tests asserting the paper's headline claims end-to-end at a
// scaled-down budget. These are the "does the reproduction reproduce" tests:
// if one of them fails, the benches would print the wrong story.

#include <gtest/gtest.h>

#include "carbon/cobra/cobra_solver.hpp"
#include "carbon/core/carbon_solver.hpp"
#include "carbon/core/experiment.hpp"
#include "carbon/cover/exact.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/ea/binary_ops.hpp"

namespace carbon {
namespace {

core::ExperimentConfig cfg_for_integration() {
  core::ExperimentConfig cfg;
  cfg.runs = 3;
  cfg.population_size = 20;
  cfg.archive_size = 20;
  cfg.ul_eval_budget = 300;
  cfg.ll_eval_budget = 900;
  cfg.heuristic_sample_size = 3;
  cfg.threads = 1;
  return cfg;
}

TEST(Reproduction, TableIII_CarbonGapBeatsCobraGap) {
  // Paper Table III: CARBON's best %-gap is far below COBRA's.
  const bcpop::Instance inst = bcpop::make_paper_bcpop(0);
  const core::ExperimentConfig cfg = cfg_for_integration();
  const auto carbon = core::run_cell(inst, core::Algorithm::kCarbon, cfg);
  const auto cobra = core::run_cell(inst, core::Algorithm::kCobra, cfg);
  EXPECT_LT(carbon.gap.mean, cobra.gap.mean)
      << "CARBON " << carbon.gap.mean << " vs COBRA " << cobra.gap.mean;
  // The margin should be substantial, not a coin flip.
  EXPECT_LT(carbon.gap.mean * 2.0, cobra.gap.mean);
}

TEST(Reproduction, TableIV_CobraOverestimatesRevenue) {
  // Paper Table IV: COBRA reports a higher (inflated) UL objective.
  const bcpop::Instance inst = bcpop::make_paper_bcpop(0);
  const core::ExperimentConfig cfg = cfg_for_integration();
  const auto carbon = core::run_cell(inst, core::Algorithm::kCarbon, cfg);
  const auto cobra = core::run_cell(inst, core::Algorithm::kCobra, cfg);
  EXPECT_GT(cobra.ul_objective.mean, carbon.ul_objective.mean);
}

TEST(Reproduction, Fig4_CarbonPopulationCurvesAreSteady) {
  const bcpop::Instance inst = bcpop::make_paper_bcpop(0);
  core::ExperimentConfig cfg = cfg_for_integration();
  cfg.record_convergence = true;
  const auto cell = core::run_cell(inst, core::Algorithm::kCarbon, cfg);
  const auto curve = core::average_convergence(cell.runs);
  ASSERT_GT(curve.size(), 3u);
  // Gap should end lower than it started (predators learn).
  EXPECT_LT(curve.back().current_mean_gap, curve.front().current_mean_gap);
  // UL should end higher than it started (prey improve).
  EXPECT_GT(curve.back().current_best_ul, curve.front().current_best_ul);
}

TEST(Reproduction, Eq3_RelaxationOrderingOnSampledPricings) {
  // w(x) <= A_carbon(x) <= (typical) A_cobra(x).
  cover::GeneratorConfig gen;
  gen.num_bundles = 25;
  gen.num_services = 4;
  gen.seed = 77;
  const bcpop::Instance market(cover::generate(gen), 3);

  core::CarbonConfig cc;
  cc.ul_population_size = 15;
  cc.gp_population_size = 15;
  cc.ul_eval_budget = 200;
  cc.ll_eval_budget = 800;
  cc.seed = 5;
  const core::CarbonResult trained = core::CarbonSolver(market, cc).run();

  bcpop::Evaluator eval(market);
  common::Rng rng(3);
  int lower_ok = 0;
  int upper_ok = 0;
  const int samples = 15;
  for (int s = 0; s < samples; ++s) {
    const auto pricing = ea::random_real_vector(rng, market.price_bounds());
    const auto exact = cover::exact_solve(market.lower_level_instance(pricing));
    ASSERT_TRUE(exact.feasible && exact.proven_optimal);
    const auto ec = eval.evaluate_with_heuristic(pricing,
                                                 trained.best_heuristic);
    const auto basket = ea::random_binary_vector(rng, market.num_bundles(),
                                                 0.3);
    const auto eo = eval.evaluate_with_selection(pricing, basket);
    lower_ok += exact.value <= ec.ll_objective + 1e-6;
    upper_ok += ec.ll_objective <= eo.ll_objective + 1e-6;
  }
  EXPECT_EQ(lower_ok, samples);      // w(x) <= A_carbon(x) always
  EXPECT_GE(upper_ok, samples - 2);  // A_carbon <= A_cobra almost always
}

TEST(Reproduction, CobraSeeSawVersusCarbonSteadiness) {
  // Fig. 4 vs Fig. 5: count direction reversals of the population-best UL
  // curve. COBRA's phase alternation must produce relatively more reversals.
  const bcpop::Instance inst = bcpop::make_paper_bcpop(0);
  core::ExperimentConfig cfg = cfg_for_integration();
  cfg.record_convergence = true;
  cfg.runs = 2;

  const auto count_reversals = [](const std::vector<core::ConvergencePoint>&
                                      curve) {
    std::size_t n = 0;
    for (std::size_t g = 2; g < curve.size(); ++g) {
      const double d1 =
          curve[g - 1].current_best_ul - curve[g - 2].current_best_ul;
      const double d2 = curve[g].current_best_ul - curve[g - 1].current_best_ul;
      if (d1 * d2 < 0) ++n;
    }
    return n;
  };

  const auto carbon = core::run_cell(inst, core::Algorithm::kCarbon, cfg);
  const auto cobra = core::run_cell(inst, core::Algorithm::kCobra, cfg);
  const auto carbon_curve = core::average_convergence(carbon.runs);
  const auto cobra_curve = core::average_convergence(cobra.runs);
  ASSERT_GT(carbon_curve.size(), 4u);
  ASSERT_GT(cobra_curve.size(), 4u);

  const double carbon_rate =
      static_cast<double>(count_reversals(carbon_curve)) /
      static_cast<double>(carbon_curve.size());
  const double cobra_rate =
      static_cast<double>(count_reversals(cobra_curve)) /
      static_cast<double>(cobra_curve.size());
  EXPECT_GT(cobra_rate, carbon_rate);
}

TEST(Reproduction, BudgetScalingImprovesCarbon) {
  // Sanity: more evaluation budget should not make CARBON's gap worse.
  const bcpop::Instance inst = bcpop::make_paper_bcpop(0);
  core::ExperimentConfig small = cfg_for_integration();
  small.runs = 2;
  small.ll_eval_budget = 200;
  core::ExperimentConfig large = small;
  large.ll_eval_budget = 1500;
  const auto small_cell = core::run_cell(inst, core::Algorithm::kCarbon, small);
  const auto large_cell = core::run_cell(inst, core::Algorithm::kCarbon, large);
  EXPECT_LE(large_cell.gap.mean, small_cell.gap.mean + 0.5);
}

}  // namespace
}  // namespace carbon

// Golden-trajectory regression harness: the per-generation best-objective
// sequence of a fixed-seed run must be bit-identical across every
// implementation toggle that claims trajectory neutrality —
//   simd in {auto, scalar}  x  eval_threads in {1, 4}
//   x  compiled_scoring in {on, off}  x  telemetry in {off, metrics+journal}
// for CARBON, and the analogous matrix (no compiled-scoring axis is
// exercised by its evaluation path, but the toggle must still be inert)
// for COBRA. A regression in the parallel reduction order, the compiled
// scorer, the SIMD kernels' bit-identity contract, or an instrumentation
// site that consumes RNG shows up here as a diverging trajectory, not as a
// flaky end-result comparison.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "carbon/cobra/cobra_solver.hpp"
#include "carbon/core/carbon_solver.hpp"
#include "carbon/gp/simd.hpp"
#include "carbon/obs/json.hpp"
#include "carbon/obs/run_journal.hpp"
#include "golden_common.hpp"

namespace carbon {
namespace {

using golden::Trajectory;
using golden::carbon_config;
using golden::cobra_config;
using golden::expect_same_trajectory;
using golden::make_instance;
using golden::parse_journal;
using golden::trajectory_of;

TEST(GoldenTrajectory, CarbonIsInvariantAcrossThreadsCompilationTelemetry) {
  const bcpop::Instance inst = make_instance();

  // Baseline: serial, interpreted, no telemetry, forced-scalar kernels.
  gp::simd::select_path("scalar");
  core::CarbonConfig base = carbon_config();
  base.eval_threads = 1;
  base.compiled_scoring = false;
  const Trajectory golden =
      trajectory_of(core::CarbonSolver(inst, base).run());
  ASSERT_GT(golden.generations, 1);

  for (const char* simd : {"auto", "scalar"}) {
    gp::simd::select_path(simd);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      for (const bool compiled : {false, true}) {
        for (const bool telemetry : {false, true}) {
          core::CarbonConfig cfg = carbon_config();
          cfg.eval_threads = threads;
          cfg.compiled_scoring = compiled;

          obs::MetricsRegistry metrics;
          std::ostringstream sink;
          obs::RunJournal journal(sink, &metrics);
          if (telemetry) {
            cfg.telemetry.metrics = &metrics;
            cfg.telemetry.journal = &journal;
          }

          const core::CarbonResult r = core::CarbonSolver(inst, cfg).run();
          const std::string label =
              std::string("simd=") + gp::simd::path_name() +
              " threads=" + std::to_string(threads) +
              " compiled=" + std::to_string(compiled) +
              " telemetry=" + std::to_string(telemetry);
          expect_same_trajectory(golden, trajectory_of(r), label);

          if (telemetry) {
            // run_start + one record per generation + summary, all parsable.
            const auto records = parse_journal(sink.str());
            ASSERT_EQ(records.size(),
                      static_cast<std::size_t>(r.generations) + 2)
                << label;
            EXPECT_EQ(records.front().at("type").as_string(), "run_start");
            EXPECT_EQ(records.back().at("type").as_string(), "summary");
            EXPECT_EQ(records.back().at("best_ul").as_number(),
                      r.best_ul_objective);
          }
        }
      }
    }
  }
  gp::simd::select_path("auto");
}

TEST(GoldenTrajectory, CarbonIsInvariantAcrossSchedulerAndScoreMemo) {
  // The PR-9 axes against the unregenerated baseline: the work-stealing
  // scheduler (vs the barriered parallel_for reference) and the
  // cross-generation score memo (vs none) both claim bit-identical
  // trajectories — memo hits still charge the Table II budgets, and the
  // scheduler only reorders execution of pure jobs committed into
  // index-ordered slots (docs/ALGORITHMS.md §14). A divergence anywhere in
  // sched x memo_xgen x eval_threads x compiled_scoring lands here.
  const bcpop::Instance inst = make_instance();

  // Baseline: the legacy path — serial, interpreted, no memoization.
  core::CarbonConfig base = carbon_config();
  base.eval_threads = 1;
  base.compiled_scoring = false;
  base.memo_xgen = false;
  const Trajectory golden =
      trajectory_of(core::CarbonSolver(inst, base).run());
  ASSERT_GT(golden.generations, 1);

  for (const common::SchedKind sched :
       {common::SchedKind::kParallelFor, common::SchedKind::kStealing}) {
    for (const bool memo : {false, true}) {
      for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
        for (const bool compiled : {false, true}) {
          core::CarbonConfig cfg = carbon_config();
          cfg.sched = sched;
          cfg.memo_xgen = memo;
          cfg.eval_threads = threads;
          cfg.compiled_scoring = compiled;
          const std::string label =
              std::string("sched=") +
              (sched == common::SchedKind::kStealing ? "stealing"
                                                     : "parallel_for") +
              " memo_xgen=" + std::to_string(memo) +
              " threads=" + std::to_string(threads) +
              " compiled=" + std::to_string(compiled);
          expect_same_trajectory(
              golden, trajectory_of(core::CarbonSolver(inst, cfg).run()),
              label);
        }
      }
    }
  }
}

TEST(GoldenTrajectory, CobraIsInvariantAcrossSchedulerAndScoreMemo) {
  const bcpop::Instance inst = make_instance();

  cobra::CobraConfig base = cobra_config();
  base.eval_threads = 1;
  base.memo_xgen = false;
  const Trajectory golden =
      trajectory_of(cobra::CobraSolver(inst, base).run());
  ASSERT_GT(golden.generations, 1);

  for (const common::SchedKind sched :
       {common::SchedKind::kParallelFor, common::SchedKind::kStealing}) {
    for (const bool memo : {false, true}) {
      cobra::CobraConfig cfg = cobra_config();
      cfg.sched = sched;
      cfg.memo_xgen = memo;
      cfg.eval_threads = 4;
      const std::string label =
          std::string("sched=") +
          (sched == common::SchedKind::kStealing ? "stealing"
                                                 : "parallel_for") +
          " memo_xgen=" + std::to_string(memo);
      expect_same_trajectory(
          golden, trajectory_of(cobra::CobraSolver(inst, cfg).run()), label);
    }
  }
}

TEST(GoldenTrajectory, CarbonJournalTrajectoryIsThreadCountInvariant) {
  // Beyond the in-memory trace: the *journal contents* (minus wall-clock
  // noise) must agree between a serial and a 4-thread run.
  const bcpop::Instance inst = make_instance();

  const auto journal_of = [&](std::size_t threads) {
    core::CarbonConfig cfg = carbon_config();
    cfg.eval_threads = threads;
    std::ostringstream sink;
    obs::RunJournal journal(sink);
    cfg.telemetry.journal = &journal;
    (void)core::CarbonSolver(inst, cfg).run();
    return parse_journal(sink.str());
  };

  const auto serial = journal_of(1);
  const auto parallel = journal_of(4);
  ASSERT_EQ(serial.size(), parallel.size());
  const char* kTrajectoryFields[] = {
      "best_ul", "mean_ul", "std_ul", "best_gap", "mean_gap", "std_gap",
      "best_ul_so_far", "best_gap_so_far"};
  for (std::size_t i = 0; i < serial.size(); ++i) {
    if (serial[i].at("type").as_string() != "generation") continue;
    SCOPED_TRACE("record " + std::to_string(i));
    for (const char* field : kTrajectoryFields) {
      EXPECT_EQ(serial[i].at(field).as_number(),
                parallel[i].at(field).as_number())
          << field;
    }
    EXPECT_EQ(serial[i].at("ul_evals").as_integer(),
              parallel[i].at("ul_evals").as_integer());
    EXPECT_EQ(serial[i].at("ll_evals").as_integer(),
              parallel[i].at("ll_evals").as_integer());
  }
}

TEST(GoldenTrajectory, CobraIsInvariantAcrossThreadsAndTelemetry) {
  const bcpop::Instance inst = make_instance();

  cobra::CobraConfig base = cobra_config();
  base.eval_threads = 1;
  const Trajectory golden =
      trajectory_of(cobra::CobraSolver(inst, base).run());
  ASSERT_GT(golden.generations, 1);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const bool telemetry : {false, true}) {
      cobra::CobraConfig cfg = cobra_config();
      cfg.eval_threads = threads;

      obs::MetricsRegistry metrics;
      std::ostringstream sink;
      obs::RunJournal journal(sink, &metrics);
      if (telemetry) {
        cfg.telemetry.metrics = &metrics;
        cfg.telemetry.journal = &journal;
      }

      const core::RunResult r = cobra::CobraSolver(inst, cfg).run();
      const std::string label = "threads=" + std::to_string(threads) +
                                " telemetry=" + std::to_string(telemetry);
      expect_same_trajectory(golden, trajectory_of(r), label);

      if (telemetry) {
        const auto records = parse_journal(sink.str());
        ASSERT_EQ(records.size(),
                  static_cast<std::size_t>(r.generations) + 2)
            << label;
        // COBRA phases round-robin through the schedule.
        bool saw_upper = false;
        bool saw_lower = false;
        bool saw_coevolution = false;
        for (const auto& rec : records) {
          if (rec.at("type").as_string() != "generation") continue;
          const std::string& phase = rec.at("phase").as_string();
          saw_upper = saw_upper || phase == "upper";
          saw_lower = saw_lower || phase == "lower";
          saw_coevolution = saw_coevolution || phase == "coevolution";
        }
        EXPECT_TRUE(saw_upper && saw_lower && saw_coevolution) << label;
      }
    }
  }
}

TEST(GoldenTrajectory, ReusedTelemetrySinksDoNotPerturbLaterRuns) {
  // One registry + journal observing two back-to-back runs: the second
  // run's trajectory must match a fresh-sink run (the journal diffs timers
  // against begin_run, so history cannot leak into the records either).
  const bcpop::Instance inst = make_instance();
  core::CarbonConfig cfg = carbon_config();

  obs::MetricsRegistry metrics;
  std::ostringstream sink;
  obs::RunJournal journal(sink, &metrics);
  cfg.telemetry.metrics = &metrics;
  cfg.telemetry.journal = &journal;

  const Trajectory first =
      trajectory_of(core::CarbonSolver(inst, cfg).run());
  const Trajectory second =
      trajectory_of(core::CarbonSolver(inst, cfg).run());
  expect_same_trajectory(first, second, "second run, reused sinks");

  const auto records = parse_journal(sink.str());
  EXPECT_EQ(static_cast<long long>(records.size()),
            journal.records_written());
  EXPECT_EQ(records.size(),
            2 * (static_cast<std::size_t>(first.generations) + 2));
}

}  // namespace
}  // namespace carbon

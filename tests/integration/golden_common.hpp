// Shared fixtures for the golden-trajectory harness: the reference instance
// and solver configurations, the bitwise Trajectory comparison, and the
// journal parser. Used by golden_trajectory_test.cpp (neutrality of
// threads/compilation/telemetry) and checkpoint_resume_test.cpp (kill at
// generation k + resume reproduces the uninterrupted trajectory).
#pragma once

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "carbon/cobra/cobra_solver.hpp"
#include "carbon/core/carbon_solver.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/obs/json.hpp"

namespace carbon::golden {

inline bcpop::Instance make_instance() {
  cover::GeneratorConfig cfg;
  cfg.num_bundles = 30;
  cfg.num_services = 4;
  cfg.seed = 21;
  return bcpop::Instance(cover::generate(cfg), /*num_owned=*/3);
}

inline core::CarbonConfig carbon_config() {
  core::CarbonConfig cfg;
  cfg.ul_population_size = 8;
  cfg.ul_archive_size = 8;
  cfg.gp_population_size = 8;
  cfg.gp_archive_size = 8;
  cfg.heuristic_sample_size = 2;
  cfg.archive_reinjection = 2;
  cfg.ul_eval_budget = 48;
  cfg.ll_eval_budget = 480;
  cfg.seed = 7;
  return cfg;
}

inline cobra::CobraConfig cobra_config() {
  cobra::CobraConfig cfg;
  cfg.ul_population_size = 8;
  cfg.ll_population_size = 8;
  cfg.ul_archive_size = 8;
  cfg.ll_archive_size = 8;
  cfg.upper_phase_generations = 2;
  cfg.lower_phase_generations = 2;
  cfg.coevolution_pairs = 4;
  cfg.archive_reinjection = 2;
  cfg.ul_eval_budget = 80;
  cfg.ll_eval_budget = 800;
  cfg.seed = 7;
  return cfg;
}

/// The trajectory under test: one entry per recorded generation. Doubles
/// are compared bitwise (EXPECT_EQ), not within a tolerance.
struct Trajectory {
  std::vector<double> best_ul_so_far;
  std::vector<double> best_gap_so_far;
  std::vector<double> current_best_ul;
  std::vector<double> current_mean_gap;
  std::vector<long long> ul_evals;
  std::vector<long long> ll_evals;
  double final_best_ul = 0.0;
  double final_best_gap = 0.0;
  int generations = 0;
};

inline Trajectory trajectory_of(const core::RunResult& r) {
  Trajectory t;
  for (const auto& pt : r.convergence) {
    t.best_ul_so_far.push_back(pt.best_ul_so_far);
    t.best_gap_so_far.push_back(pt.best_gap_so_far);
    t.current_best_ul.push_back(pt.current_best_ul);
    t.current_mean_gap.push_back(pt.current_mean_gap);
    t.ul_evals.push_back(pt.ul_evaluations);
    t.ll_evals.push_back(pt.ll_evaluations);
  }
  t.final_best_ul = r.best_ul_objective;
  t.final_best_gap = r.best_gap;
  t.generations = r.generations;
  return t;
}

inline void expect_same_trajectory(const Trajectory& want,
                                   const Trajectory& got,
                                   const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(want.generations, got.generations);
  ASSERT_EQ(want.best_ul_so_far.size(), got.best_ul_so_far.size());
  for (std::size_t g = 0; g < want.best_ul_so_far.size(); ++g) {
    SCOPED_TRACE("generation " + std::to_string(g));
    EXPECT_EQ(want.best_ul_so_far[g], got.best_ul_so_far[g]);    // bitwise
    EXPECT_EQ(want.best_gap_so_far[g], got.best_gap_so_far[g]);  // bitwise
    EXPECT_EQ(want.current_best_ul[g], got.current_best_ul[g]);
    EXPECT_EQ(want.current_mean_gap[g], got.current_mean_gap[g]);
    EXPECT_EQ(want.ul_evals[g], got.ul_evals[g]);
    EXPECT_EQ(want.ll_evals[g], got.ll_evals[g]);
  }
  EXPECT_EQ(want.final_best_ul, got.final_best_ul);
  EXPECT_EQ(want.final_best_gap, got.final_best_gap);
}

inline std::vector<obs::JsonValue> parse_journal(const std::string& text) {
  std::vector<obs::JsonValue> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) out.push_back(obs::parse_json(line));
  }
  return out;
}

}  // namespace carbon::golden

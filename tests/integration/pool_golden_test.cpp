// Golden-trajectory matrix for the lp_warm=pool axis (docs/ALGORITHMS.md
// §15). Pool mode is a DIFFERENT golden trajectory than baseline mode —
// degenerate LPs may surface alternate optimal duals/x̄ under a pooled start
// basis — but it makes its own determinism claims, asserted here:
//
//   * one pool trajectory per algorithm, bit-identical across
//     eval_threads {1, 4} x compiled_scoring {off, on} and across repeated
//     runs (the staged select/insert discipline keeps pool state a pure
//     function of the batch sequence, not of thread scheduling);
//   * resume determinism: two resumes from one checkpoint agree bit for
//     bit, and a resumed segment never consumes pooled bases from another
//     segment (clear-on-resume), proven with a pool poisoned by foreign
//     work between kill and resume;
//   * the backend telemetry actually reports pool activity (family
//     rebinds, pool hits) so the counters cannot silently rot.

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "carbon/bcpop/parallel_evaluator.hpp"
#include "carbon/cobra/cobra_solver.hpp"
#include "carbon/common/rng.hpp"
#include "carbon/core/carbon_solver.hpp"
#include "carbon/ea/real_ops.hpp"
#include "carbon/gp/generate.hpp"
#include "carbon/obs/json.hpp"
#include "carbon/obs/run_journal.hpp"
#include "common/temp_dir.hpp"
#include "golden_common.hpp"

namespace carbon {
namespace {

using golden::Trajectory;
using golden::expect_same_trajectory;
using golden::make_instance;
using golden::parse_journal;
using golden::trajectory_of;

TEST(PoolGolden, CarbonPoolTrajectoryIsInvariantAcrossThreadsCompilation) {
  const bcpop::Instance inst = make_instance();

  core::CarbonConfig base = golden::carbon_config();
  base.lp_warm = bcpop::LpWarm::kPool;
  base.eval_threads = 1;
  base.compiled_scoring = false;
  const Trajectory golden_run =
      trajectory_of(core::CarbonSolver(inst, base).run());
  ASSERT_GT(golden_run.generations, 1);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const bool compiled : {false, true}) {
      for (int repeat = 0; repeat < 2; ++repeat) {
        core::CarbonConfig cfg = golden::carbon_config();
        cfg.lp_warm = bcpop::LpWarm::kPool;
        cfg.eval_threads = threads;
        cfg.compiled_scoring = compiled;
        const std::string label = "pool threads=" + std::to_string(threads) +
                                  " compiled=" + std::to_string(compiled) +
                                  " repeat=" + std::to_string(repeat);
        expect_same_trajectory(
            golden_run, trajectory_of(core::CarbonSolver(inst, cfg).run()),
            label);
      }
    }
  }
}

TEST(PoolGolden, CobraPoolTrajectoryIsInvariantAcrossThreadsCompilation) {
  const bcpop::Instance inst = make_instance();

  cobra::CobraConfig base = golden::cobra_config();
  base.lp_warm = bcpop::LpWarm::kPool;
  base.eval_threads = 1;
  base.compiled_scoring = false;
  const Trajectory golden_run =
      trajectory_of(cobra::CobraSolver(inst, base).run());
  ASSERT_GT(golden_run.generations, 1);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const bool compiled : {false, true}) {
      for (int repeat = 0; repeat < 2; ++repeat) {
        cobra::CobraConfig cfg = golden::cobra_config();
        cfg.lp_warm = bcpop::LpWarm::kPool;
        cfg.eval_threads = threads;
        cfg.compiled_scoring = compiled;
        const std::string label = "pool threads=" + std::to_string(threads) +
                                  " compiled=" + std::to_string(compiled) +
                                  " repeat=" + std::to_string(repeat);
        expect_same_trajectory(
            golden_run, trajectory_of(cobra::CobraSolver(inst, cfg).run()),
            label);
      }
    }
  }
}

TEST(PoolGolden, PoolBackendCountersReportActivity) {
  // Telemetry must not perturb the pool trajectory, and the summary's
  // backend block must show the pool actually working: cost-only rebinds
  // on every relaxation solve and warm-start hits once the pool is primed.
  const bcpop::Instance inst = make_instance();

  core::CarbonConfig base = golden::carbon_config();
  base.lp_warm = bcpop::LpWarm::kPool;
  const Trajectory golden_run =
      trajectory_of(core::CarbonSolver(inst, base).run());

  core::CarbonConfig cfg = golden::carbon_config();
  cfg.lp_warm = bcpop::LpWarm::kPool;
  obs::MetricsRegistry metrics;
  std::ostringstream sink;
  obs::RunJournal journal(sink, &metrics);
  cfg.telemetry.metrics = &metrics;
  cfg.telemetry.journal = &journal;
  const core::CarbonResult r = core::CarbonSolver(inst, cfg).run();
  expect_same_trajectory(golden_run, trajectory_of(r), "pool + telemetry");

  const auto records = parse_journal(sink.str());
  ASSERT_FALSE(records.empty());
  const obs::JsonValue& summary = records.back();
  ASSERT_EQ(summary.at("type").as_string(), "summary");
  const obs::JsonValue& backend = summary.at("backend");
  EXPECT_GT(backend.at("lp_family_rebinds").as_integer(), 0);
  EXPECT_GT(backend.at("lp_pool_hits").as_integer(), 0);
  // Pool commits come from clean optimal bases of the shared family, so
  // rejections should be the exception, never the rule.
  EXPECT_LE(backend.at("lp_pool_rejects").as_integer(),
            backend.at("lp_pool_hits").as_integer());
}

TEST(PoolGolden, PoolResumeIsDeterministicAndSegmentIsolated) {
  // Pool-mode resume contract: a resumed run is NOT asserted bit-identical
  // to the uninterrupted run (the pool is cleared at the segment boundary,
  // a documented trade-off) — but resuming twice from one checkpoint must
  // agree bit for bit, and the resumed trajectory must be IDENTICAL whether
  // the serving evaluator is fresh or carries a pool poisoned by foreign
  // work: the resumed segment never consumes another segment's bases.
  const bcpop::Instance inst = make_instance();
  const std::string path =
      carbon::test::test_temp_dir() + "carbon-pool-resume.ckpt";

  core::CarbonConfig cfg = golden::carbon_config();
  cfg.lp_warm = bcpop::LpWarm::kPool;
  cfg.checkpoint.every = 2;
  cfg.checkpoint.path = path;
  int killed_at = 0;
  cfg.checkpoint.stop_after_checkpoint = [&](int gen) {
    killed_at = gen;
    return true;
  };
  (void)core::CarbonSolver(inst, cfg).run();
  ASSERT_EQ(killed_at, 2);

  core::CarbonConfig resume = golden::carbon_config();
  resume.lp_warm = bcpop::LpWarm::kPool;
  resume.checkpoint.resume_from = path;
  const Trajectory first =
      trajectory_of(core::CarbonSolver(inst, resume).run());
  const Trajectory second =
      trajectory_of(core::CarbonSolver(inst, resume).run());
  expect_same_trajectory(first, second, "pool resume, twice");

  // Poisoned-evaluator resume: warm the external evaluator's basis pool
  // (and caches) with work no segment of the golden run ever performed,
  // then resume on it. clear_caches-on-resume must drop the foreign bases,
  // so the trajectory matches the fresh-evaluator resumes above.
  bcpop::ParallelEvaluator eval(
      inst, bcpop::ParallelEvaluator::Options{
                .threads = 4, .lp_warm = bcpop::LpWarm::kPool});
  common::Rng rng(4242);
  for (int i = 0; i < 8; ++i) {
    const gp::Tree tree = gp::generate_ramped(rng);
    const bcpop::Pricing pricing =
        ea::random_real_vector(rng, eval.price_bounds());
    (void)eval.evaluate_with_heuristic(pricing, tree,
                                       bcpop::EvalPurpose::kLowerOnly);
  }
  ASSERT_GT(eval.basis_pool().size(), 0u)
      << "poisoning must actually seed the pool";

  core::CarbonConfig poisoned = golden::carbon_config();
  poisoned.lp_warm = bcpop::LpWarm::kPool;
  poisoned.checkpoint.resume_from = path;
  const Trajectory via_poisoned =
      trajectory_of(core::CarbonSolver(eval, poisoned).run());
  expect_same_trajectory(first, via_poisoned, "poisoned-pool resume");
  std::remove(path.c_str());
}

TEST(PoolGolden, PoolModeDegenerateDualsAreReproducible) {
  // Evaluator-level pin for the degenerate-LP hazard: the SAME pricing
  // evaluated through pool-mode evaluators with different thread counts and
  // different pool histories must report bit-identical follower reactions
  // and objectives. (The per-batch relaxation of a pricing depends only on
  // the deterministic pool state at that batch — reproduced here by
  // replaying an identical evaluation sequence.)
  const bcpop::Instance inst = make_instance();

  const auto replay = [&](std::size_t threads) {
    bcpop::ParallelEvaluator eval(
        inst, bcpop::ParallelEvaluator::Options{
                  .threads = threads, .lp_warm = bcpop::LpWarm::kPool});
    common::Rng rng(77);
    std::vector<double> gaps;
    std::vector<double> objectives;
    for (int i = 0; i < 12; ++i) {
      const gp::Tree tree = gp::generate_ramped(rng);
      const bcpop::Pricing pricing =
          ea::random_real_vector(rng, eval.price_bounds());
      const bcpop::Evaluation e = eval.evaluate_with_heuristic(
          pricing, tree, bcpop::EvalPurpose::kBoth);
      gaps.push_back(e.gap_percent);
      objectives.push_back(e.ul_objective);
    }
    return std::make_pair(gaps, objectives);
  };

  const auto serial = replay(1);
  const auto parallel = replay(4);
  ASSERT_EQ(serial.first.size(), parallel.first.size());
  for (std::size_t i = 0; i < serial.first.size(); ++i) {
    SCOPED_TRACE("evaluation " + std::to_string(i));
    EXPECT_EQ(serial.first[i], parallel.first[i]);    // bitwise
    EXPECT_EQ(serial.second[i], parallel.second[i]);  // bitwise
  }
}

}  // namespace
}  // namespace carbon

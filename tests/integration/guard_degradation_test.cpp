// Whole-run guard-rail harness: deterministic degradation under budget caps
// and fault injection (docs/ALGORITHMS.md §13).
//
// The contracts under test:
//   * An injected degradation at evaluation #k produces a bit-identical
//     trajectory across eval_threads {1, 4} × compiled_scoring {off, on} —
//     the injection ordinal counts charged evaluations in submission order,
//     which no batching or threading may reorder.
//   * Killing an injected run at a checkpoint and resuming reproduces the
//     uninterrupted injected trajectory bit for bit; an injection that
//     already fired before the checkpoint never re-fires after resume.
//   * Tight deterministic caps (LP iteration cap) degrade evaluations onto
//     the Lagrangian rung without breaking cross-thread bit-identity — a
//     cap-induced degradation is a pure function of (pricing, limits), so
//     it must survive the relaxation cache and any evaluation order.
//   * The default (unlimited) guard is inert: trajectories equal the
//     unguarded golden and every guard counter stays zero, which is what
//     lets the golden fixtures stay unregenerated.

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "carbon/cobra/cobra_solver.hpp"
#include "carbon/core/carbon_solver.hpp"
#include "carbon/obs/metrics.hpp"
#include "carbon/obs/run_journal.hpp"
#include "common/temp_dir.hpp"
#include "golden_common.hpp"

namespace carbon {
namespace {

using golden::Trajectory;
using golden::expect_same_trajectory;
using golden::make_instance;
using golden::parse_journal;
using golden::trajectory_of;

long long counter_or_zero(const obs::MetricsRegistry::Snapshot& snap,
                          const std::string& name) {
  const auto it = snap.counters.find(name);
  return it == snap.counters.end() ? 0 : it->second;
}

TEST(GuardDegradation, CarbonInjectionIsThreadAndCompilationInvariant) {
  const bcpop::Instance inst = make_instance();

  // Probe the run length so the injection ordinal is guaranteed to land
  // inside the run (budget accounting is unchanged by degradation, so the
  // injected runs consume exactly as many evaluations).
  const core::CarbonResult probe =
      core::CarbonSolver(inst, golden::carbon_config()).run();
  ASSERT_GT(probe.ll_evaluations, 4);
  const long long inject_at = probe.ll_evaluations / 2;

  Trajectory golden_injected;
  bool have_golden = false;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const bool compiled : {false, true}) {
      core::CarbonConfig cfg = golden::carbon_config();
      cfg.eval_threads = threads;
      cfg.compiled_scoring = compiled;
      cfg.guard.inject.at_eval = inject_at;
      cfg.guard.inject.degrade_to = guard::Rung::kLagrangian;
      obs::MetricsRegistry metrics;
      cfg.telemetry.metrics = &metrics;

      const Trajectory got =
          trajectory_of(core::CarbonSolver(inst, cfg).run());
      const std::string label = "threads=" + std::to_string(threads) +
                                " compiled=" + std::to_string(compiled);
      const auto snap = metrics.snapshot();
      EXPECT_EQ(counter_or_zero(snap, "guard/trips"), 1) << label;
      EXPECT_EQ(counter_or_zero(snap, "guard/degraded_evals"), 1) << label;
      if (!have_golden) {
        golden_injected = got;
        have_golden = true;
      } else {
        expect_same_trajectory(golden_injected, got, label);
      }
    }
  }
}

TEST(GuardDegradation, CobraInjectionIsThreadAndCompilationInvariant) {
  const bcpop::Instance inst = make_instance();

  const core::RunResult probe =
      cobra::CobraSolver(inst, golden::cobra_config()).run();
  ASSERT_GT(probe.ll_evaluations, 4);
  const long long inject_at = probe.ll_evaluations / 2;

  Trajectory golden_injected;
  bool have_golden = false;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const bool compiled : {false, true}) {
      cobra::CobraConfig cfg = golden::cobra_config();
      cfg.eval_threads = threads;
      cfg.compiled_scoring = compiled;
      cfg.guard.inject.at_eval = inject_at;
      obs::MetricsRegistry metrics;
      cfg.telemetry.metrics = &metrics;

      const Trajectory got =
          trajectory_of(cobra::CobraSolver(inst, cfg).run());
      const std::string label = "threads=" + std::to_string(threads) +
                                " compiled=" + std::to_string(compiled);
      EXPECT_EQ(counter_or_zero(metrics.snapshot(), "guard/trips"), 1)
          << label;
      if (!have_golden) {
        golden_injected = got;
        have_golden = true;
      } else {
        expect_same_trajectory(golden_injected, got, label);
      }
    }
  }
}

TEST(GuardDegradation, CarbonInjectedKillResumeIsBitIdentical) {
  const bcpop::Instance inst = make_instance();
  const core::CarbonResult probe =
      core::CarbonSolver(inst, golden::carbon_config()).run();
  ASSERT_GT(trajectory_of(probe).generations, 3);

  // Two injection ordinals bracket the checkpoint at generation 2: one
  // fires in the pre-kill segment (and must NOT re-fire after resume — the
  // solver rebases the ordinal against the budget already consumed), one
  // fires only in the resumed segment.
  const long long ordinals[] = {5, probe.ll_evaluations - 3};
  for (const long long inject_at : ordinals) {
    const std::string label = "inject_at=" + std::to_string(inject_at);

    // Uninterrupted injected run: the bitwise reference. The injection must
    // actually fire, or this test would pass vacuously.
    core::CarbonConfig full = golden::carbon_config();
    full.guard.inject.at_eval = inject_at;
    obs::MetricsRegistry full_metrics;
    full.telemetry.metrics = &full_metrics;
    const Trajectory reference =
        trajectory_of(core::CarbonSolver(inst, full).run());
    ASSERT_EQ(counter_or_zero(full_metrics.snapshot(), "guard/trips"), 1)
        << label;

    // Kill right after the checkpoint at generation 2, then resume.
    const std::string path =
        carbon::test::test_temp_dir() + "inject-" +
        std::to_string(inject_at) + ".ckpt";
    core::CarbonConfig part = golden::carbon_config();
    part.guard.inject.at_eval = inject_at;
    part.checkpoint.every = 2;
    part.checkpoint.path = path;
    int killed_at = 0;
    part.checkpoint.stop_after_checkpoint = [&](int gen) {
      killed_at = gen;
      return true;
    };
    (void)core::CarbonSolver(inst, part).run();
    ASSERT_EQ(killed_at, 2) << label;

    core::CarbonConfig resume = golden::carbon_config();
    resume.guard.inject.at_eval = inject_at;
    resume.checkpoint.resume_from = path;
    obs::MetricsRegistry resume_metrics;
    resume.telemetry.metrics = &resume_metrics;
    const Trajectory resumed =
        trajectory_of(core::CarbonSolver(inst, resume).run());
    expect_same_trajectory(reference, resumed, "resumed " + label);
    // The resumed segment re-fires the injection if and only if its
    // ordinal lies beyond the checkpoint's consumed budget.
    const long long resumed_trips =
        counter_or_zero(resume_metrics.snapshot(), "guard/trips");
    if (inject_at == ordinals[0]) {
      EXPECT_EQ(resumed_trips, 0) << label << ": pre-checkpoint injection "
                                              "re-fired after resume";
    } else {
      EXPECT_EQ(resumed_trips, 1) << label;
    }
  }
}

TEST(GuardDegradation, CobraInjectedKillResumeIsBitIdentical) {
  const bcpop::Instance inst = make_instance();
  const core::RunResult probe =
      cobra::CobraSolver(inst, golden::cobra_config()).run();
  ASSERT_GT(trajectory_of(probe).generations, 3);

  const long long inject_at = probe.ll_evaluations - 3;
  cobra::CobraConfig full = golden::cobra_config();
  full.guard.inject.at_eval = inject_at;
  obs::MetricsRegistry full_metrics;
  full.telemetry.metrics = &full_metrics;
  const Trajectory reference =
      trajectory_of(cobra::CobraSolver(inst, full).run());
  ASSERT_EQ(counter_or_zero(full_metrics.snapshot(), "guard/trips"), 1);

  const std::string path = carbon::test::test_temp_dir() + "cobra.ckpt";
  cobra::CobraConfig part = golden::cobra_config();
  part.guard.inject.at_eval = inject_at;
  part.checkpoint.every = 2;
  part.checkpoint.path = path;
  int killed_at = 0;
  part.checkpoint.stop_after_checkpoint = [&](int gen) {
    killed_at = gen;
    return true;
  };
  (void)cobra::CobraSolver(inst, part).run();
  ASSERT_GT(killed_at, 0);

  cobra::CobraConfig resume = golden::cobra_config();
  resume.guard.inject.at_eval = inject_at;
  resume.checkpoint.resume_from = path;
  const Trajectory resumed =
      trajectory_of(cobra::CobraSolver(inst, resume).run());
  expect_same_trajectory(reference, resumed, "cobra resumed");
}

TEST(GuardDegradation, CarbonTightLpCapDegradesDeterministically) {
  // lp_iteration_cap = 1: nearly every pricing needs more than one pivot
  // from the fixed baseline basis, so most evaluations fall to the
  // Lagrangian rung. The run must stay deterministic across the thread ×
  // compilation matrix — cap-induced degradations are pure functions of
  // (pricing, limits) and ride the relaxation cache.
  const bcpop::Instance inst = make_instance();

  Trajectory golden_capped;
  bool have_golden = false;
  long long golden_trips = -1;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const bool compiled : {false, true}) {
      core::CarbonConfig cfg = golden::carbon_config();
      cfg.eval_threads = threads;
      cfg.compiled_scoring = compiled;
      cfg.guard.limits.lp_iteration_cap = 1;
      obs::MetricsRegistry metrics;
      cfg.telemetry.metrics = &metrics;

      const Trajectory got =
          trajectory_of(core::CarbonSolver(inst, cfg).run());
      const std::string label = "threads=" + std::to_string(threads) +
                                " compiled=" + std::to_string(compiled);
      const long long trips =
          counter_or_zero(metrics.snapshot(), "guard/trips");
      EXPECT_GT(trips, 0) << label;
      if (!have_golden) {
        golden_capped = got;
        golden_trips = trips;
        have_golden = true;
      } else {
        expect_same_trajectory(golden_capped, got, label);
        EXPECT_EQ(trips, golden_trips) << label;
      }
    }
  }
}

TEST(GuardDegradation, CarbonTinyNodeBudgetStillTerminates) {
  // A node budget too small for even the bound leaves every evaluation
  // skipped (infeasible, pessimal gap) — the run must degrade gracefully:
  // terminate on its budget, produce a trajectory, and count the skips.
  const bcpop::Instance inst = make_instance();
  core::CarbonConfig cfg = golden::carbon_config();
  cfg.guard.limits.ll_node_cap = 1;
  obs::MetricsRegistry metrics;
  cfg.telemetry.metrics = &metrics;

  const core::CarbonResult r = core::CarbonSolver(inst, cfg).run();
  EXPECT_GT(r.generations, 0);
  EXPECT_GT(r.ll_evaluations, 0);
  const auto snap = metrics.snapshot();
  EXPECT_GT(counter_or_zero(snap, "guard/budget_exhausted"), 0);
  EXPECT_EQ(counter_or_zero(snap, "guard/budget_exhausted"),
            counter_or_zero(snap, "guard/degraded_evals"));

  // Determinism holds here too.
  obs::MetricsRegistry metrics2;
  core::CarbonConfig cfg2 = golden::carbon_config();
  cfg2.guard.limits.ll_node_cap = 1;
  cfg2.eval_threads = 4;
  cfg2.telemetry.metrics = &metrics2;
  const core::CarbonResult r2 = core::CarbonSolver(inst, cfg2).run();
  expect_same_trajectory(trajectory_of(r), trajectory_of(r2),
                         "node-cap threads=4");
}

TEST(GuardDegradation, DefaultGuardIsInertAndCountsZero) {
  // The acceptance criterion that keeps the golden fixtures valid: an
  // explicitly-defaulted guard changes nothing, and the journal's summary
  // reports all guard counters as zero.
  const bcpop::Instance inst = make_instance();
  const Trajectory unguarded =
      trajectory_of(core::CarbonSolver(inst, golden::carbon_config()).run());

  core::CarbonConfig cfg = golden::carbon_config();
  cfg.guard = guard::GuardConfig{};  // explicit default
  obs::MetricsRegistry metrics;
  std::ostringstream sink;
  obs::RunJournal journal(sink, &metrics);
  cfg.telemetry.metrics = &metrics;
  cfg.telemetry.journal = &journal;

  const Trajectory guarded =
      trajectory_of(core::CarbonSolver(inst, cfg).run());
  expect_same_trajectory(unguarded, guarded, "default guard");

  const auto snap = metrics.snapshot();
  EXPECT_EQ(counter_or_zero(snap, "guard/trips"), 0);
  EXPECT_EQ(counter_or_zero(snap, "guard/degraded_evals"), 0);
  EXPECT_EQ(counter_or_zero(snap, "guard/budget_exhausted"), 0);

  const auto records = parse_journal(sink.str());
  ASSERT_FALSE(records.empty());
  const obs::JsonValue& summary = records.back();
  ASSERT_EQ(summary.at("type").as_string(), "summary");
  const obs::JsonValue& backend = summary.at("backend");
  EXPECT_EQ(backend.at("guard_trips").as_integer(), 0);
  EXPECT_EQ(backend.at("guard_degraded").as_integer(), 0);
  EXPECT_EQ(backend.at("guard_exhausted").as_integer(), 0);
}

}  // namespace
}  // namespace carbon

// End-to-end test of the `carbon` CLI binary: generate -> relax -> greedy ->
// exact -> solve, checking exit codes and that artifacts appear. The binary
// path is injected by CMake as CARBON_CLI_PATH.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "common/temp_dir.hpp"

#ifndef CARBON_CLI_PATH
#error "CARBON_CLI_PATH must be defined by the build system"
#endif

namespace {

std::string cli() { return CARBON_CLI_PATH; }

int run(const std::string& args) {
  const std::string cmd = cli() + " " + args + " > /dev/null 2>&1";
  return std::system(cmd.c_str());
}

std::string capture(const std::string& args) {
  const std::string out_path = carbon::test::test_temp_dir() + "out.txt";
  const std::string cmd = cli() + " " + args + " > " + out_path + " 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << cmd;
  std::ifstream f(out_path);
  std::stringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

TEST(Cli, NoArgumentsIsUsageError) { EXPECT_NE(run(""), 0); }

TEST(Cli, UnknownCommandIsUsageError) { EXPECT_NE(run("frobnicate"), 0); }

TEST(Cli, MissingInputFileFails) {
  EXPECT_NE(run("relax --in /nonexistent/instance.orlib"), 0);
}

TEST(Cli, FullWorkflow) {
  const std::string inst = carbon::test::test_temp_dir() + "market.orlib";
  const std::string conv = carbon::test::test_temp_dir() + "conv.csv";

  // generate
  const std::string gen_out = capture(
      "generate --bundles 30 --services 4 --seed 5 --out " + inst);
  EXPECT_NE(gen_out.find("30 bundles"), std::string::npos);

  // relax
  const std::string relax_out = capture("relax --in " + inst);
  EXPECT_NE(relax_out.find("lower bound:"), std::string::npos);

  // greedy with a hand-written tree
  const std::string greedy_out =
      capture("greedy --in " + inst + " --tree \"(div QCOV COST)\"");
  EXPECT_NE(greedy_out.find("gap:"), std::string::npos);

  // exact
  const std::string exact_out = capture("exact --in " + inst);
  EXPECT_NE(exact_out.find("proven optimal"), std::string::npos);

  // solve with CARBON + convergence dump
  const std::string solve_out = capture(
      "solve --in " + inst +
      " --owned 3 --algo carbon --ul-budget 100 --ll-budget 300 "
      "--pop 10 --convergence " + conv);
  EXPECT_NE(solve_out.find("best leader revenue"), std::string::npos);
  EXPECT_NE(solve_out.find("follower model:"), std::string::npos);

  std::ifstream conv_file(conv);
  ASSERT_TRUE(conv_file.good());
  std::string header;
  std::getline(conv_file, header);
  EXPECT_NE(header.find("generation"), std::string::npos);
}

TEST(Cli, StrictNumericFlagsAreRejected) {
  const std::string inst = carbon::test::test_temp_dir() + "strict.orlib";
  ASSERT_EQ(run("generate --bundles 20 --services 3 --out " + inst), 0);
  const std::string solve = "solve --in " + inst +
                            " --owned 2 --algo carbon --ul-budget 40 "
                            "--ll-budget 100 --pop 8";
  // Trailing garbage, non-numeric, and non-positive values all fail; the
  // well-formed equivalent succeeds.
  EXPECT_NE(run(solve + " --threads 4x"), 0);
  EXPECT_NE(run(solve + " --threads abc"), 0);
  EXPECT_NE(run(solve + " --threads 0"), 0);
  EXPECT_NE(run(solve + " --threads -2"), 0);
  EXPECT_NE(run("solve --in " + inst +
                " --owned 2 --algo carbon --ul-budget 40 --ll-budget 100 "
                "--pop 0"), 0);
  EXPECT_NE(run("solve --in " + inst +
                " --owned 2 --algo carbon --ul-budget 0 --pop 8"), 0);
  EXPECT_EQ(run(solve + " --threads 2"), 0);
}

TEST(Cli, CheckpointFlagsAreValidated) {
  const std::string inst = carbon::test::test_temp_dir() + "ckpt.orlib";
  const std::string ckpt = carbon::test::test_temp_dir() + "ckpt.ckpt";
  ASSERT_EQ(run("generate --bundles 20 --services 3 --out " + inst), 0);
  const std::string solve = "solve --in " + inst +
                            " --owned 2 --ul-budget 40 --ll-budget 100 --pop 8";
  // Each checkpoint flag requires its partner, and checkpointing is only
  // meaningful for the generational solvers.
  EXPECT_NE(run(solve + " --algo carbon --checkpoint " + ckpt), 0);
  EXPECT_NE(run(solve + " --algo carbon --checkpoint-every 2"), 0);
  EXPECT_NE(run(solve + " --algo carbon --checkpoint " + ckpt +
                " --checkpoint-every 0"), 0);
  EXPECT_NE(run(solve + " --algo biga --checkpoint " + ckpt +
                " --checkpoint-every 2"), 0);
  EXPECT_NE(run(solve + " --algo nested --resume " + ckpt), 0);
  EXPECT_NE(run(solve + " --algo carbon --resume /nonexistent.ckpt"), 0);
}

TEST(Cli, CheckpointThenResumeSmoke) {
  const std::string inst = carbon::test::test_temp_dir() + "resume.orlib";
  const std::string ckpt = carbon::test::test_temp_dir() + "resume.ckpt";
  ASSERT_EQ(run("generate --bundles 20 --services 3 --out " + inst), 0);
  for (const std::string algo : {"carbon", "cobra"}) {
    SCOPED_TRACE(algo);
    const std::string solve = "solve --in " + inst + " --owned 2 --algo " +
                              algo +
                              " --ul-budget 60 --ll-budget 150 --pop 8";
    // First run writes checkpoints as it goes and reports the destination.
    const std::string first = capture(solve + " --checkpoint " + ckpt +
                                      " --checkpoint-every 1");
    EXPECT_NE(first.find("checkpointing to"), std::string::npos);
    std::ifstream written(ckpt);
    ASSERT_TRUE(written.good());
    // Second run resumes from the finished run's final checkpoint.
    const std::string second = capture(solve + " --resume " + ckpt);
    EXPECT_NE(second.find("resumed from: " + ckpt), std::string::npos);
    EXPECT_NE(second.find("best leader revenue"), std::string::npos);
    std::remove(ckpt.c_str());
  }
}

TEST(Cli, SolveRejectsUnknownAlgorithm) {
  const std::string inst = carbon::test::test_temp_dir() + "market2.orlib";
  ASSERT_EQ(run("generate --bundles 20 --services 3 --out " + inst), 0);
  EXPECT_NE(run("solve --in " + inst + " --algo magic"), 0);
}

TEST(Cli, EveryAlgorithmSolves) {
  const std::string inst = carbon::test::test_temp_dir() + "market3.orlib";
  ASSERT_EQ(run("generate --bundles 20 --services 3 --out " + inst), 0);
  for (const std::string algo :
       {"carbon", "cobra", "biga", "codba", "nested"}) {
    EXPECT_EQ(run("solve --in " + inst + " --owned 2 --algo " + algo +
                  " --ul-budget 60 --ll-budget 150 --pop 8"),
              0)
        << algo;
  }
}

}  // namespace

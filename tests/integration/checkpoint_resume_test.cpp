// Kill/resume fault-injection harness for the checkpoint subsystem.
//
// The contract under test (docs/ALGORITHMS.md §11): killing a run right
// after a checkpoint at generation k and resuming from the file reproduces
// the *uninterrupted* run's trajectory bit for bit — across the
// eval_threads {1, 4} × compiled_scoring {off, on} matrix, across a
// cross-configuration resume (checkpoint written by a serial interpreted
// run, resumed by a parallel compiled one), and across chained
// kill/resume/kill/resume sequences. Also covers the negative paths: a
// truncated, corrupted, wrong-algorithm or wrong-seed file must be rejected
// with CheckpointError before any solver or evaluator state is touched.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "carbon/bcpop/evaluator.hpp"
#include "carbon/bcpop/parallel_evaluator.hpp"
#include "carbon/cobra/cobra_solver.hpp"
#include "carbon/common/rng.hpp"
#include "carbon/core/carbon_solver.hpp"
#include "carbon/core/checkpoint.hpp"
#include "carbon/ea/real_ops.hpp"
#include "carbon/gp/generate.hpp"
#include "carbon/guard/guard.hpp"
#include "common/temp_dir.hpp"
#include "golden_common.hpp"

namespace carbon {
namespace {

using golden::Trajectory;
using golden::expect_same_trajectory;
using golden::make_instance;
using golden::trajectory_of;

/// Unique-per-test file path (tests/common/temp_dir.hpp), so parallel ctest
/// shards never race on a shared checkpoint file.
std::string temp_path(const std::string& name) {
  return carbon::test::test_temp_dir() + name;
}

/// Runs CARBON to completion with checkpointing on but no kill; used as the
/// bitwise reference for the interrupted runs.
Trajectory carbon_golden(const bcpop::Instance& inst) {
  core::CarbonConfig cfg = golden::carbon_config();
  cfg.eval_threads = 1;
  cfg.compiled_scoring = false;
  return trajectory_of(core::CarbonSolver(inst, cfg).run());
}

Trajectory cobra_golden(const bcpop::Instance& inst) {
  cobra::CobraConfig cfg = golden::cobra_config();
  cfg.eval_threads = 1;
  return trajectory_of(cobra::CobraSolver(inst, cfg).run());
}

TEST(CheckpointResume, CarbonKillAtKResumesBitIdentically) {
  const bcpop::Instance inst = make_instance();
  const Trajectory golden_run = carbon_golden(inst);
  ASSERT_GT(golden_run.generations, 3);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const bool compiled : {false, true}) {
      const std::string label = "threads=" + std::to_string(threads) +
                                " compiled=" + std::to_string(compiled);
      const std::string path =
          temp_path("carbon-" + std::to_string(threads) +
                    (compiled ? "-c" : "-i") + ".ckpt");

      // Phase 1: run with checkpointing every 2 generations; the hook
      // simulates a kill right after the first write (generation 2).
      core::CarbonConfig cfg = golden::carbon_config();
      cfg.eval_threads = threads;
      cfg.compiled_scoring = compiled;
      cfg.checkpoint.every = 2;
      cfg.checkpoint.path = path;
      int killed_at = 0;
      cfg.checkpoint.stop_after_checkpoint = [&](int gen) {
        killed_at = gen;
        return true;
      };
      (void)core::CarbonSolver(inst, cfg).run();
      ASSERT_EQ(killed_at, 2) << label;

      // Phase 2: a fresh solver resumes from the file and runs to the end.
      core::CarbonConfig resume = golden::carbon_config();
      resume.eval_threads = threads;
      resume.compiled_scoring = compiled;
      resume.checkpoint.resume_from = path;
      const Trajectory resumed =
          trajectory_of(core::CarbonSolver(inst, resume).run());
      expect_same_trajectory(golden_run, resumed, "resumed " + label);
      std::remove(path.c_str());
    }
  }
}

TEST(CheckpointResume, CarbonCrossConfigResumeIsBitIdentical) {
  // A checkpoint is evaluator-agnostic: written by a serial interpreted
  // run, it must resume bit-identically under a 4-thread compiled
  // evaluator (and vice versa) — the same neutrality the golden-trajectory
  // harness asserts for uninterrupted runs.
  const bcpop::Instance inst = make_instance();
  const Trajectory golden_run = carbon_golden(inst);
  const std::string path = temp_path("carbon-cross.ckpt");

  core::CarbonConfig writer = golden::carbon_config();
  writer.eval_threads = 1;
  writer.compiled_scoring = false;
  writer.checkpoint.every = 2;
  writer.checkpoint.path = path;
  writer.checkpoint.stop_after_checkpoint = [](int) { return true; };
  (void)core::CarbonSolver(inst, writer).run();

  core::CarbonConfig reader = golden::carbon_config();
  reader.eval_threads = 4;
  reader.compiled_scoring = true;
  reader.checkpoint.resume_from = path;
  const Trajectory resumed =
      trajectory_of(core::CarbonSolver(inst, reader).run());
  expect_same_trajectory(golden_run, resumed, "serial->parallel resume");
  std::remove(path.c_str());
}

TEST(CheckpointResume, CarbonChainedKillsResumeBitIdentically) {
  // Kill at the first checkpoint, resume with checkpointing still on, kill
  // at the next one, resume again: two preemptions, one golden trajectory.
  const bcpop::Instance inst = make_instance();
  const Trajectory golden_run = carbon_golden(inst);
  const std::string path = temp_path("carbon-chain.ckpt");

  core::CarbonConfig first = golden::carbon_config();
  first.eval_threads = 1;
  first.compiled_scoring = false;
  first.checkpoint.every = 2;
  first.checkpoint.path = path;
  first.checkpoint.stop_after_checkpoint = [](int) { return true; };
  (void)core::CarbonSolver(inst, first).run();

  core::CarbonConfig second = first;
  second.checkpoint.resume_from = path;
  int kills = 0;
  second.checkpoint.stop_after_checkpoint = [&](int) { return ++kills == 1; };
  (void)core::CarbonSolver(inst, second).run();
  ASSERT_EQ(kills, 1);

  core::CarbonConfig last = golden::carbon_config();
  last.eval_threads = 1;
  last.compiled_scoring = false;
  last.checkpoint.resume_from = path;
  const Trajectory resumed =
      trajectory_of(core::CarbonSolver(inst, last).run());
  expect_same_trajectory(golden_run, resumed, "after two kills");
  std::remove(path.c_str());
}

TEST(CheckpointResume, CobraKillAtRoundBoundaryResumesBitIdentically) {
  const bcpop::Instance inst = make_instance();
  const Trajectory golden_run = cobra_golden(inst);
  ASSERT_GT(golden_run.generations, 5);

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const bool compiled : {false, true}) {
      const std::string label = "threads=" + std::to_string(threads) +
                                " compiled=" + std::to_string(compiled);
      const std::string path =
          temp_path("cobra-" + std::to_string(threads) +
                    (compiled ? "-c" : "-i") + ".ckpt");

      cobra::CobraConfig cfg = golden::cobra_config();
      cfg.eval_threads = threads;
      cfg.compiled_scoring = compiled;
      cfg.checkpoint.every = 3;  // first round boundary at or past gen 3
      cfg.checkpoint.path = path;
      int killed_at = -1;
      cfg.checkpoint.stop_after_checkpoint = [&](int gen) {
        killed_at = gen;
        return true;
      };
      (void)cobra::CobraSolver(inst, cfg).run();
      ASSERT_GE(killed_at, 3) << label;

      cobra::CobraConfig resume = golden::cobra_config();
      resume.eval_threads = threads;
      resume.compiled_scoring = compiled;
      resume.checkpoint.resume_from = path;
      const Trajectory resumed =
          trajectory_of(cobra::CobraSolver(inst, resume).run());
      expect_same_trajectory(golden_run, resumed, "resumed " + label);
      std::remove(path.c_str());
    }
  }
}

TEST(CheckpointResume, CobraCrossConfigResumeIsBitIdentical) {
  const bcpop::Instance inst = make_instance();
  const Trajectory golden_run = cobra_golden(inst);
  const std::string path = temp_path("cobra-cross.ckpt");

  cobra::CobraConfig writer = golden::cobra_config();
  writer.eval_threads = 4;
  writer.checkpoint.every = 3;
  writer.checkpoint.path = path;
  writer.checkpoint.stop_after_checkpoint = [](int) { return true; };
  (void)cobra::CobraSolver(inst, writer).run();

  cobra::CobraConfig reader = golden::cobra_config();
  reader.eval_threads = 1;
  reader.checkpoint.resume_from = path;
  const Trajectory resumed =
      trajectory_of(cobra::CobraSolver(inst, reader).run());
  expect_same_trajectory(golden_run, resumed, "parallel->serial resume");
  std::remove(path.c_str());
}

TEST(CheckpointResume, CheckpointWritesNeverPerturbTheTrajectory) {
  // Checkpointing on (but never killed) must match checkpointing off.
  const bcpop::Instance inst = make_instance();

  core::CarbonConfig cfg = golden::carbon_config();
  cfg.checkpoint.every = 1;
  cfg.checkpoint.path = temp_path("carbon-every1.ckpt");
  const Trajectory with_ckpt =
      trajectory_of(core::CarbonSolver(inst, cfg).run());
  expect_same_trajectory(carbon_golden(inst), with_ckpt,
                         "checkpoint.every=1");
  std::remove(cfg.checkpoint.path.c_str());

  cobra::CobraConfig ccfg = golden::cobra_config();
  ccfg.checkpoint.every = 1;
  ccfg.checkpoint.path = temp_path("cobra-every1.ckpt");
  const Trajectory cobra_with_ckpt =
      trajectory_of(cobra::CobraSolver(inst, ccfg).run());
  expect_same_trajectory(cobra_golden(inst), cobra_with_ckpt,
                         "cobra checkpoint.every=1");
  std::remove(ccfg.checkpoint.path.c_str());
}

// ---- Negative paths: rejected files, untouched state -----------------------

/// Writes a valid CARBON checkpoint and returns its path.
std::string write_carbon_checkpoint(const bcpop::Instance& inst,
                                    const std::string& name) {
  core::CarbonConfig cfg = golden::carbon_config();
  cfg.checkpoint.every = 2;
  cfg.checkpoint.path = temp_path(name);
  cfg.checkpoint.stop_after_checkpoint = [](int) { return true; };
  (void)core::CarbonSolver(inst, cfg).run();
  return cfg.checkpoint.path;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

void spit(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << contents;
}

TEST(CheckpointResume, RejectedResumeLeavesEvaluatorUntouched) {
  const bcpop::Instance inst = make_instance();
  const std::string good = write_carbon_checkpoint(inst, "tamper.ckpt");
  const std::string file = slurp(good);
  ASSERT_FALSE(file.empty());

  struct Case {
    const char* name;
    std::string contents;
  };
  std::string bitflip = file;
  bitflip[file.size() / 2] ^= 0x01;
  const Case cases[] = {
      {"truncated", file.substr(0, file.size() / 2)},
      {"bit-flipped", bitflip},
      {"empty", ""},
      {"not json", "hello world\n{}\n"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    const std::string path = temp_path("bad.ckpt");
    spit(path, c.contents);

    bcpop::Evaluator eval(inst);
    core::CarbonConfig cfg = golden::carbon_config();
    cfg.checkpoint.resume_from = path;
    EXPECT_THROW((void)core::CarbonSolver(eval, cfg).run(),
                 core::CheckpointError);
    // No partial state: the evaluator was never consulted.
    EXPECT_EQ(eval.ul_evaluations(), 0);
    EXPECT_EQ(eval.ll_evaluations(), 0);
    std::remove(path.c_str());
  }

  // Wrong algorithm: a CARBON file must not resume a COBRA run.
  {
    bcpop::Evaluator eval(inst);
    cobra::CobraConfig cfg = golden::cobra_config();
    cfg.checkpoint.resume_from = good;
    EXPECT_THROW((void)cobra::CobraSolver(eval, cfg).run(),
                 core::CheckpointError);
    EXPECT_EQ(eval.ul_evaluations(), 0);
    EXPECT_EQ(eval.ll_evaluations(), 0);
  }

  // Wrong seed: the file echoes its config seed and a mismatch rejects.
  {
    bcpop::Evaluator eval(inst);
    core::CarbonConfig cfg = golden::carbon_config();
    cfg.seed = 12345;
    cfg.checkpoint.resume_from = good;
    EXPECT_THROW((void)core::CarbonSolver(eval, cfg).run(),
                 core::CheckpointError);
    EXPECT_EQ(eval.ul_evaluations(), 0);
  }

  // Wrong population shape.
  {
    bcpop::Evaluator eval(inst);
    core::CarbonConfig cfg = golden::carbon_config();
    cfg.ul_population_size = 16;
    cfg.checkpoint.resume_from = good;
    EXPECT_THROW((void)core::CarbonSolver(eval, cfg).run(),
                 core::CheckpointError);
    EXPECT_EQ(eval.ul_evaluations(), 0);
  }

  std::remove(good.c_str());
}

TEST(CheckpointResume, ReusedEvaluatorWithWarmCachesResumesBitIdentically) {
  // The cache-poisoning kill-at-k case: ONE external evaluator serves the
  // killed phase-1 run, then absorbs unrelated work between the kill and
  // the resume — first under TIGHT guard limits (degraded-ladder bits in
  // both caches), then re-warmed under the run's own limits so the resume
  // path's set_guard sees UNCHANGED limits and clears nothing itself —
  // and finally serves the resumed run. run_with() must drop that inherited
  // cache state before the first resumed evaluation (clear_caches-on-resume)
  // WITHOUT resetting the lifetime counters its budget/backend offsets are
  // computed from; the resumed trajectory must match the uninterrupted
  // golden run bit for bit despite the evaluator's foreign history.
  const bcpop::Instance inst = make_instance();
  const Trajectory golden_run = carbon_golden(inst);
  const std::string path = temp_path("carbon-poison.ckpt");

  bcpop::ParallelEvaluator eval(inst, /*threads=*/4);

  // Phase 1: kill right after the checkpoint at generation 2.
  core::CarbonConfig cfg = golden::carbon_config();
  cfg.checkpoint.every = 2;
  cfg.checkpoint.path = path;
  cfg.checkpoint.stop_after_checkpoint = [](int) { return true; };
  (void)core::CarbonSolver(eval, cfg).run();
  const long long ll_after_kill = eval.ll_evaluations();

  // Poison wave 1: evaluations under tight limits; wave 2: back to the
  // run's (unlimited) limits — the set_guard transitions clear the caches
  // between waves, so the state the resume inherits was warmed under limits
  // IDENTICAL to the resumed run's, and only clear_caches-on-resume
  // separates the segments.
  for (const bool tight : {true, false}) {
    guard::GuardConfig poison_guard;
    if (tight) {
      poison_guard.limits.lp_iteration_cap = 3;
      poison_guard.limits.construction_round_cap = 2;
    }
    eval.set_guard(poison_guard, 0);
    common::Rng rng(tight ? 99 : 101);
    for (int i = 0; i < 6; ++i) {
      const gp::Tree tree = gp::generate_ramped(rng);
      const bcpop::Pricing pricing =
          ea::random_real_vector(rng, eval.price_bounds());
      (void)eval.evaluate_with_heuristic(pricing, tree,
                                         bcpop::EvalPurpose::kLowerOnly);
    }
  }
  ASSERT_GT(eval.score_cache().size(), 0u) << "poisoning must warm the memo";
  ASSERT_GT(eval.cache().size(), 0u);
  ASSERT_GT(eval.ll_evaluations(), ll_after_kill)
      << "poisoning must consume budget the resume offsets absorb";

  // Phase 2: the SAME evaluator object resumes the run.
  core::CarbonConfig resume = golden::carbon_config();
  resume.checkpoint.resume_from = path;
  const Trajectory resumed =
      trajectory_of(core::CarbonSolver(eval, resume).run());
  expect_same_trajectory(golden_run, resumed, "poisoned-evaluator resume");
  std::remove(path.c_str());
}

TEST(CheckpointResume, AtomicWriteLeavesNoTempFile) {
  const bcpop::Instance inst = make_instance();
  const std::string path = write_carbon_checkpoint(inst, "atomic.ckpt");
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "temporary file left behind";
  std::ifstream final_file(path);
  EXPECT_TRUE(final_file.good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace carbon

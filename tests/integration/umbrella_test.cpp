// Compilation + smoke test of the umbrella header: every public symbol the
// README advertises must be reachable from a single include.
#include "carbon/carbon.hpp"

#include <gtest/gtest.h>

namespace {

TEST(Umbrella, EndToEndThroughSingleInclude) {
  using namespace carbon;

  // Generate a market, run every solver family briefly, touch the bounds.
  cover::GeneratorConfig gen;
  gen.num_bundles = 20;
  gen.num_services = 3;
  gen.seed = 99;
  const bcpop::Instance market(cover::generate(gen), 2);

  const cover::Relaxation rel = cover::relax(market.market());
  ASSERT_TRUE(rel.feasible);
  const auto lag =
      cover::lagrangian_bound(market.market(), rel.lower_bound * 2.0);
  EXPECT_LE(lag.lower_bound, rel.lower_bound * (1 + 1e-6) + 1e-6);

  core::CarbonConfig cc;
  cc.ul_population_size = 8;
  cc.gp_population_size = 8;
  cc.ul_eval_budget = 40;
  cc.ll_eval_budget = 160;
  cc.heuristic_sample_size = 2;
  const auto carbon_result = core::CarbonSolver(market, cc).run();
  EXPECT_TRUE(carbon_result.best_evaluation.ll_feasible);

  cobra::CobraConfig oc;
  oc.ul_population_size = 8;
  oc.ll_population_size = 8;
  oc.ul_eval_budget = 40;
  oc.ll_eval_budget = 40;
  const auto cobra_result = cobra::CobraSolver(market, oc).run();
  EXPECT_TRUE(cobra_result.best_evaluation.ll_feasible);

  const auto tree = gp::parse("(div QCOV COST)");
  EXPECT_TRUE(gp::simplify(tree).valid());
  const auto stats = gp::analyze_population(std::vector<gp::Tree>{tree});
  EXPECT_EQ(stats.population, 1u);

  const bilevel::LinearBilevel p3 = bilevel::program3();
  EXPECT_TRUE(bilevel::solve_by_grid(p3, 101).best.has_value());

  toll::GridConfig grid;
  grid.rows = 3;
  grid.cols = 3;
  const toll::Problem road = toll::make_grid_problem(grid);
  const auto zero_eval = toll::evaluate(
      road, std::vector<double>(road.tollable_arcs().size(), 0.0));
  EXPECT_TRUE(zero_eval.all_routable);
}

}  // namespace

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "carbon/cover/generator.hpp"
#include "carbon/cover/greedy.hpp"
#include "carbon/cover/relaxation.hpp"

namespace carbon::cover {
namespace {

TEST(Families, AllNamedAndDistinct) {
  const auto& fams = instance_families();
  ASSERT_GE(fams.size(), 6u);
  std::set<std::string> names;
  for (const auto& f : fams) names.insert(f.name);
  EXPECT_EQ(names.size(), fams.size());
}

class FamilySweepTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FamilySweepTest, GeneratesValidSolvableInstances) {
  const auto& fam = instance_families()[GetParam()];
  const Instance inst = generate(fam.config);
  EXPECT_TRUE(inst.coverable()) << fam.name;
  const Relaxation rel = relax(inst);
  ASSERT_TRUE(rel.feasible) << fam.name;
  const auto greedy = greedy_solve(inst, cost_effectiveness_score, rel.duals,
                                   rel.relaxed_x);
  ASSERT_TRUE(greedy.feasible) << fam.name;
  EXPECT_GE(greedy.value, rel.lower_bound - 1e-6) << fam.name;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, FamilySweepTest,
                         ::testing::Range<std::size_t>(0, 6));

TEST(Families, TightnessActuallyDiffers) {
  const auto& fams = instance_families();
  const Instance loose = generate(fams[0].config);   // tightness 0.10
  const Instance tight = generate(fams[1].config);   // tightness 0.60
  long long d_loose = 0;
  long long d_tight = 0;
  for (std::size_t k = 0; k < loose.num_services(); ++k) {
    d_loose += loose.demand(k);
  }
  for (std::size_t k = 0; k < tight.num_services(); ++k) {
    d_tight += tight.demand(k);
  }
  EXPECT_GT(d_tight, 3 * d_loose);
}

TEST(Families, SparseFamilyIsSparse) {
  const auto& fams = instance_families();
  const Instance sparse = generate(fams[2].config);  // density 0.15
  const Instance dense = generate(fams[3].config);   // density 1.0
  const auto nnz = [](const Instance& inst) {
    std::size_t count = 0;
    for (std::size_t j = 0; j < inst.num_bundles(); ++j) {
      for (std::size_t k = 0; k < inst.num_services(); ++k) {
        count += inst.quantity(j, k) > 0;
      }
    }
    return count;
  };
  EXPECT_LT(nnz(sparse) * 3, nnz(dense));
}

}  // namespace
}  // namespace carbon::cover

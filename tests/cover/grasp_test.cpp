#include "carbon/cover/grasp.hpp"

#include <gtest/gtest.h>

#include "carbon/cover/exact.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/cover/relaxation.hpp"

namespace carbon::cover {
namespace {

Instance medium() {
  GeneratorConfig cfg;
  cfg.num_bundles = 40;
  cfg.num_services = 5;
  cfg.seed = 44;
  return generate(cfg);
}

TEST(Grasp, AlwaysFeasibleOnCoverableInstances) {
  const Instance inst = medium();
  common::Rng rng(1);
  for (int rep = 0; rep < 10; ++rep) {
    const auto r = grasp_solve(inst, cost_effectiveness_score, rng);
    ASSERT_TRUE(r.feasible);
    ASSERT_TRUE(inst.feasible(r.selection));
    ASSERT_DOUBLE_EQ(r.value, inst.selection_cost(r.selection));
  }
}

TEST(Grasp, AlphaZeroSingleRestartEqualsDeterministicGreedy) {
  const Instance inst = medium();
  const Relaxation rel = relax(inst);
  common::Rng rng(2);
  GraspOptions opts;
  opts.alpha = 0.0;
  opts.restarts = 1;
  const auto grasp = grasp_solve(inst, cost_effectiveness_score, rng,
                                 rel.duals, rel.relaxed_x, opts);
  const auto greedy = greedy_solve(inst, cost_effectiveness_score, rel.duals,
                                   rel.relaxed_x);
  EXPECT_EQ(grasp.selection, greedy.selection);
  EXPECT_DOUBLE_EQ(grasp.value, greedy.value);
}

TEST(Grasp, RestartsNeverHurt) {
  const Instance inst = medium();
  const Relaxation rel = relax(inst);
  GraspOptions one;
  one.restarts = 1;
  GraspOptions many;
  many.restarts = 16;
  // Same starting RNG state for comparability of the first construction.
  common::Rng rng_a(7);
  common::Rng rng_b(7);
  const auto single = grasp_solve(inst, cost_effectiveness_score, rng_a,
                                  rel.duals, rel.relaxed_x, one);
  const auto multi = grasp_solve(inst, cost_effectiveness_score, rng_b,
                                 rel.duals, rel.relaxed_x, many);
  EXPECT_LE(multi.value, single.value + 1e-9);
}

TEST(Grasp, OftenImprovesOnDeterministicGreedy) {
  // Across several instances, multistart GRASP should find at least one
  // strictly better cover than the single deterministic construction.
  int improved = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    GeneratorConfig cfg;
    cfg.num_bundles = 35;
    cfg.num_services = 5;
    cfg.seed = 200 + seed;
    const Instance inst = generate(cfg);
    const Relaxation rel = relax(inst);
    const auto greedy = greedy_solve(inst, cost_effectiveness_score,
                                     rel.duals, rel.relaxed_x);
    common::Rng rng(seed);
    GraspOptions opts;
    opts.restarts = 20;
    const auto grasp = grasp_solve(inst, cost_effectiveness_score, rng,
                                   rel.duals, rel.relaxed_x, opts);
    EXPECT_GE(grasp.value, relax(inst).lower_bound - 1e-6);
    if (grasp.value < greedy.value - 1e-9) ++improved;
  }
  EXPECT_GE(improved, 1);
}

TEST(Grasp, NeverBeatsTheExactOptimum) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    GeneratorConfig cfg;
    cfg.num_bundles = 20;
    cfg.num_services = 4;
    cfg.seed = 300 + seed;
    const Instance inst = generate(cfg);
    const auto exact = exact_solve(inst);
    ASSERT_TRUE(exact.proven_optimal);
    common::Rng rng(seed);
    const auto grasp = grasp_solve(inst, cost_effectiveness_score, rng);
    EXPECT_GE(grasp.value, exact.value - 1e-6);
  }
}

TEST(Grasp, UncoverableReported) {
  const Instance inst({1.0}, {{1}}, {5});
  common::Rng rng(1);
  EXPECT_FALSE(grasp_solve(inst, cost_effectiveness_score, rng).feasible);
}

TEST(Grasp, ValidatesOptions) {
  const Instance inst = medium();
  common::Rng rng(1);
  GraspOptions bad;
  bad.alpha = 1.5;
  EXPECT_THROW(
      (void)grasp_solve(inst, cost_effectiveness_score, rng, {}, {}, bad),
      std::invalid_argument);
  bad.alpha = 0.2;
  bad.restarts = 0;
  EXPECT_THROW(
      (void)grasp_solve(inst, cost_effectiveness_score, rng, {}, {}, bad),
      std::invalid_argument);
}

}  // namespace
}  // namespace carbon::cover

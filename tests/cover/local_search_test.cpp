#include "carbon/cover/local_search.hpp"

#include <gtest/gtest.h>

#include "carbon/common/rng.hpp"
#include "carbon/cover/exact.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/cover/greedy.hpp"

namespace carbon::cover {
namespace {

Instance tiny() {
  return Instance({5.0, 5.0, 30.0, 90.0},
                  {{4, 0}, {0, 4}, {4, 4}, {4, 4}},
                  {4, 4});
}

TEST(LocalSearch, DropsRedundantBundles) {
  const Instance inst = tiny();
  std::vector<std::uint8_t> sel = {1, 1, 1, 1};  // everything bought
  const LocalSearchResult r = local_search(inst, sel);
  EXPECT_TRUE(inst.feasible(sel));
  EXPECT_DOUBLE_EQ(r.value, 10.0);  // only the cheap pair survives
  EXPECT_GE(r.drops, 2u);
}

TEST(LocalSearch, SwapsExpensiveForCheap) {
  // Start from the overpriced all-in-one bundle.
  const Instance inst = tiny();
  std::vector<std::uint8_t> sel = {0, 0, 0, 1};
  const LocalSearchResult r = local_search(inst, sel);
  EXPECT_TRUE(inst.feasible(sel));
  // Swap 90 -> 30 is feasible; then cheap pair is not reachable by single
  // swaps from {2} (dropping 2 breaks feasibility), so optimum of this
  // neighbourhood is 30.
  EXPECT_DOUBLE_EQ(r.value, 30.0);
  EXPECT_GE(r.swaps, 1u);
}

TEST(LocalSearch, RejectsInfeasibleStart) {
  const Instance inst = tiny();
  std::vector<std::uint8_t> sel = {1, 0, 0, 0};
  EXPECT_THROW((void)local_search(inst, sel), std::invalid_argument);
  std::vector<std::uint8_t> wrong_size = {1, 1};
  EXPECT_THROW((void)local_search(inst, wrong_size), std::invalid_argument);
}

TEST(LocalSearch, MoveBudgetRespected) {
  const Instance inst = tiny();
  std::vector<std::uint8_t> sel = {1, 1, 1, 1};
  LocalSearchOptions opts;
  opts.max_moves = 1;
  const LocalSearchResult r = local_search(inst, sel, opts);
  EXPECT_EQ(r.drops + r.swaps, 1u);
  EXPECT_TRUE(inst.feasible(sel));
}

TEST(LocalSearch, NeighbourhoodsCanBeDisabled) {
  const Instance inst = tiny();
  std::vector<std::uint8_t> sel = {1, 1, 1, 1};
  LocalSearchOptions opts;
  opts.enable_drop = false;
  opts.enable_swap = false;
  const LocalSearchResult r = local_search(inst, sel, opts);
  EXPECT_EQ(r.drops + r.swaps, 0u);
  EXPECT_DOUBLE_EQ(r.value, 130.0);
}

class LocalSearchSweepTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(LocalSearchSweepTest, NeverWorsensAndKeepsFeasibility) {
  GeneratorConfig cfg;
  cfg.num_bundles = 50;
  cfg.num_services = 6;
  cfg.seed = 700 + GetParam();
  const Instance inst = generate(cfg);
  common::Rng rng(GetParam());

  // Start from a sloppy random-score greedy cover.
  const auto start = greedy_solve_with(
      inst, [&rng](const BundleFeatures&) { return rng.uniform(); }, {}, {},
      {.eliminate_redundancy = false});
  ASSERT_TRUE(start.feasible);

  std::vector<std::uint8_t> sel = start.selection;
  const LocalSearchResult r = local_search(inst, sel);
  EXPECT_TRUE(inst.feasible(sel));
  EXPECT_LE(r.value, start.value + 1e-9);
  EXPECT_DOUBLE_EQ(r.value, inst.selection_cost(sel));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalSearchSweepTest,
                         ::testing::Range<std::uint64_t>(0, 10));

TEST(LocalSearch, PolishedGreedyApproachesExactOptimum) {
  double greedy_total = 0.0;
  double polished_total = 0.0;
  double exact_total = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    GeneratorConfig cfg;
    cfg.num_bundles = 25;
    cfg.num_services = 4;
    cfg.seed = 800 + seed;
    const Instance inst = generate(cfg);
    const auto greedy = greedy_solve(inst, cost_effectiveness_score);
    ASSERT_TRUE(greedy.feasible);
    std::vector<std::uint8_t> sel = greedy.selection;
    const auto polished = local_search(inst, sel);
    const auto exact = exact_solve(inst);
    ASSERT_TRUE(exact.proven_optimal);
    greedy_total += greedy.value;
    polished_total += polished.value;
    exact_total += exact.value;
    EXPECT_GE(polished.value, exact.value - 1e-6);
  }
  EXPECT_LE(polished_total, greedy_total + 1e-9);
  // Polish closes at least part of the greedy-to-optimal gap overall.
  EXPECT_LT(polished_total - exact_total, greedy_total - exact_total + 1e-9);
}

TEST(LocalSearch, DeterministicGivenSameStart) {
  GeneratorConfig cfg;
  cfg.num_bundles = 30;
  cfg.num_services = 5;
  cfg.seed = 33;
  const Instance inst = generate(cfg);
  const auto greedy = greedy_solve(inst, cost_effectiveness_score);
  std::vector<std::uint8_t> a = greedy.selection;
  std::vector<std::uint8_t> b = greedy.selection;
  (void)local_search(inst, a);
  (void)local_search(inst, b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace carbon::cover

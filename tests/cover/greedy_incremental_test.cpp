// Differential tests for the incremental (dirty-set) batched greedy: for
// every scorer regime — BRES-dependent (dense rescore every round),
// QCOV-only (dirty-set rescore), round-invariant (never rescored) — the
// selections, tie-breaks, and objective must be bit-identical to the dense
// per-bundle reference greedy_solve_with, and the GreedyBatchStats must
// show the work actually skipped.
//
// Labeled sanitizer-critical: the gather/scatter sub-batch path indexes
// compacted columns through the surviving-dirty list; ASan validates those
// bounds, and the scratch-reuse tests catch any state leaking between
// solves through a recycled GreedyScratch.

#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <span>
#include <vector>

#include "carbon/common/rng.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/cover/greedy.hpp"
#include "carbon/cover/instance.hpp"
#include "carbon/gp/compiled.hpp"
#include "carbon/gp/generate.hpp"
#include "carbon/gp/scoring.hpp"
#include "carbon/gp/tree.hpp"

namespace carbon::cover {
namespace {

[[nodiscard]] std::uint64_t bits(double v) noexcept {
  return std::bit_cast<std::uint64_t>(v);
}

/// Small instances so the suite stays fast yet runs many greedy rounds.
[[nodiscard]] Instance small_instance(std::uint64_t seed,
                                      std::size_t bundles = 60,
                                      std::size_t services = 8) {
  GeneratorConfig cfg;
  cfg.num_bundles = bundles;
  cfg.num_services = services;
  cfg.tightness = 0.45;  // tighter demand -> more rounds -> more rescoring
  cfg.seed = seed;
  return generate(cfg);
}

/// LP-ish side inputs so DUAL and XBAR are exercised too.
struct SideInputs {
  std::vector<double> duals;
  std::vector<double> xbar;
};

[[nodiscard]] SideInputs side_inputs(common::Rng& rng, const Instance& inst) {
  SideInputs s;
  s.duals.resize(inst.num_services());
  s.xbar.resize(inst.num_bundles());
  for (auto& d : s.duals) d = rng.uniform(0.0, 2.0);
  for (auto& x : s.xbar) x = rng.uniform(0.0, 1.0);
  return s;
}

void expect_same_solve(const SolveResult& a, const SolveResult& b,
                       const char* label) {
  ASSERT_EQ(a.feasible, b.feasible) << label;
  ASSERT_EQ(a.selection, b.selection) << label;
  ASSERT_EQ(bits(a.value), bits(b.value)) << label;
}

TEST(GreedyIncremental, MatchesPerBundleReferenceAcrossRandomPrograms) {
  common::Rng rng(4242);
  GreedyScratch scratch;
  std::vector<double> reg_scratch;

  int dirty_regime_seen = 0;
  for (int trial = 0; trial < 40; ++trial) {
    const Instance inst = small_instance(100 + trial);
    const SideInputs side = side_inputs(rng, inst);

    gp::GenerateConfig gen;
    const int depth = 3 + static_cast<int>(rng.below(3));
    gen.min_depth = depth;
    gen.max_depth = depth;
    const gp::Tree tree = gp::generate_full(rng, depth, gen);
    const gp::CompiledProgram program = gp::CompiledProgram::compile(tree);

    // Reference: per-bundle interpreter greedy (the paper's algorithm).
    const SolveResult ref = greedy_solve_with(
        inst, gp::make_score_function(tree), side.duals, side.xbar);

    // Incremental dirty-set greedy through the dependency-aware scorer.
    GreedyBatchStats stats;
    const SolveResult inc = greedy_solve_batched(
        inst, gp::CompiledBatchScorer(program, reg_scratch), side.duals,
        side.xbar, {}, &scratch, &stats);
    expect_same_solve(ref, inc, tree.to_string().c_str());

    // Dense batched baseline: the same program behind a plain lambda (not
    // TerminalAware), which forces a full rescore every round.
    std::vector<double> dense_scratch;
    const SolveResult dense = greedy_solve_batched(
        inst,
        [&](const BatchFeatureView& view, std::span<double> out) {
          program.evaluate_batch(gp::view_to_batch(view), out, dense_scratch);
        },
        side.duals, side.xbar);
    expect_same_solve(dense, inc, tree.to_string().c_str());

    // Stats must reflect the regime the program's terminals dictate.
    ASSERT_GT(stats.rounds, 0u);
    ASSERT_EQ(stats.rescore_slots, stats.rounds * inst.num_bundles());
    if (program.uses_terminal(gp::Terminal::kBres)) {
      EXPECT_EQ(stats.bundles_rescored, stats.rescore_slots)
          << tree.to_string();
    } else if (program.uses_terminal(gp::Terminal::kQcov)) {
      EXPECT_LE(stats.bundles_rescored, stats.rescore_slots);
      if (stats.rounds > 1) {
        EXPECT_LT(stats.rescored_frac(), 1.0) << tree.to_string();
        ++dirty_regime_seen;
      }
    } else {
      // Round-invariant: only the first dense round scores anything.
      EXPECT_EQ(stats.bundles_rescored, inst.num_bundles())
          << tree.to_string();
    }
  }
  // The generator must have produced at least a few multi-round QCOV-only
  // programs, or the dirty-set path went untested.
  EXPECT_GT(dirty_regime_seen, 0);
}

TEST(GreedyIncremental, QcovOnlyProgramsTakeTheDirtySetPath) {
  // Hand-built QCOV-dependent, BRES-free scorers covering div/mul/sub forms.
  const char* programs[] = {
      "(div QCOV COST)",
      "(sub (mul QCOV DUAL) COST)",
      "(add (div QCOV COST) (mul XBAR QCOV))",
      "(div (mul QCOV QCOV) (add COST QSUM))",
  };
  common::Rng rng(99);
  GreedyScratch scratch;
  std::vector<double> reg_scratch;
  for (const char* text : programs) {
    const gp::Tree tree = gp::parse(text);
    const gp::CompiledProgram program = gp::CompiledProgram::compile(tree);
    ASSERT_TRUE(program.uses_terminal(gp::Terminal::kQcov)) << text;
    ASSERT_FALSE(program.uses_terminal(gp::Terminal::kBres)) << text;

    for (std::uint64_t seed : {7ULL, 8ULL, 9ULL}) {
      const Instance inst = small_instance(seed, 120, 10);
      const SideInputs side = side_inputs(rng, inst);

      const SolveResult ref = greedy_solve_with(
          inst, gp::make_score_function(tree), side.duals, side.xbar);
      GreedyBatchStats stats;
      const SolveResult inc = greedy_solve_batched(
          inst, gp::CompiledBatchScorer(program, reg_scratch), side.duals,
          side.xbar, {}, &scratch, &stats);
      expect_same_solve(ref, inc, text);
      if (stats.rounds > 1) {
        EXPECT_LT(stats.rescored_frac(), 1.0) << text << " seed=" << seed;
      }
    }
  }
}

TEST(GreedyIncremental, StaticProgramMatchesSortBasedFastPath) {
  // Scorers reading neither QCOV nor BRES are round-invariant; the batched
  // greedy must agree with greedy_solve_static fed the same score column.
  const gp::Tree tree = gp::parse("(sub (mul DUAL QSUM) (div COST QSUM))");
  const gp::CompiledProgram program = gp::CompiledProgram::compile(tree);
  ASSERT_TRUE(program.is_static());

  common::Rng rng(5);
  std::vector<double> reg_scratch;
  GreedyScratch scratch;
  for (std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    const Instance inst = small_instance(seed);
    const SideInputs side = side_inputs(rng, inst);

    GreedyBatchStats stats;
    const SolveResult inc = greedy_solve_batched(
        inst, gp::CompiledBatchScorer(program, reg_scratch), side.duals,
        side.xbar, {}, &scratch, &stats);

    // Score every bundle once (any residual state: scores ignore it).
    std::vector<double> qsum;
    std::vector<double> dual_mass;
    detail::static_masses(inst, side.duals, qsum, dual_mass);
    BatchFeatureView view;
    std::vector<double> zeros(inst.num_bundles(), 0.0);
    view.cost = inst.costs();
    view.qsum = qsum;
    view.qcov = zeros;  // unread by a static program
    view.dual = dual_mass;
    view.xbar = side.xbar;
    view.bres = 0.0;
    view.count = inst.num_bundles();
    std::vector<double> scores(inst.num_bundles());
    gp::CompiledBatchScorer(program, reg_scratch)(view, scores);
    const SolveResult fast = greedy_solve_static(inst, scores);

    expect_same_solve(fast, inc, "static fast path");
    // Round-invariant regime: exactly one dense scoring round.
    EXPECT_EQ(stats.bundles_rescored, inst.num_bundles());
  }
}

TEST(GreedyIncremental, ConstantScoresPreserveIndexTieBreaks) {
  // All-equal scores make every round a pure tie: both paths must pick the
  // lowest-index eligible bundle (strict `>` argmax keeps the first max).
  const gp::Tree tree = gp::parse("(div COST COST)");  // simplifies to 1
  const gp::CompiledProgram program = gp::CompiledProgram::compile(tree);
  std::vector<double> reg_scratch;
  for (std::uint64_t seed : {21ULL, 22ULL}) {
    const Instance inst = small_instance(seed);
    const SolveResult ref =
        greedy_solve_with(inst, gp::make_score_function(tree));
    const SolveResult inc = greedy_solve_batched(
        inst, gp::CompiledBatchScorer(program, reg_scratch));
    expect_same_solve(ref, inc, "constant scores");
  }
}

TEST(GreedyIncremental, ScratchReuseIsStateless) {
  // A scratch carried across solves of different instances and programs
  // must never change any result relative to a fresh scratch.
  common::Rng rng(314);
  GreedyScratch reused;
  std::vector<double> reg_scratch;
  for (int trial = 0; trial < 12; ++trial) {
    const Instance inst =
        small_instance(300 + trial, 40 + 10 * (trial % 3), 6 + (trial % 2));
    const SideInputs side = side_inputs(rng, inst);
    gp::GenerateConfig gen;
    gen.min_depth = 4;
    gen.max_depth = 4;
    const gp::Tree tree = gp::generate_full(rng, 4, gen);
    const gp::CompiledProgram program = gp::CompiledProgram::compile(tree);

    const SolveResult with_reused = greedy_solve_batched(
        inst, gp::CompiledBatchScorer(program, reg_scratch), side.duals,
        side.xbar, {}, &reused);
    std::vector<double> fresh_regs;
    const SolveResult with_fresh = greedy_solve_batched(
        inst, gp::CompiledBatchScorer(program, fresh_regs), side.duals,
        side.xbar, {}, nullptr);
    expect_same_solve(with_fresh, with_reused, tree.to_string().c_str());
  }
}

TEST(GreedyIncremental, PaperClassInstancesRescoreFractionBelowOne) {
  // The acceptance-criterion shape: on Table III instance classes, a
  // QCOV-only scorer must skip a meaningful share of rescoring work.
  const gp::Tree tree = gp::parse("(div QCOV COST)");
  const gp::CompiledProgram program = gp::CompiledProgram::compile(tree);
  std::vector<double> reg_scratch;
  GreedyScratch scratch;
  for (std::size_t c = 0; c < paper_classes().size(); ++c) {
    const Instance inst = make_paper_instance(c, 0);
    GreedyBatchStats stats;
    const SolveResult solved = greedy_solve_batched(
        inst, gp::CompiledBatchScorer(program, reg_scratch), {}, {}, {},
        &scratch, &stats);
    ASSERT_TRUE(solved.feasible) << "class " << c;
    ASSERT_GT(stats.rounds, 1u) << "class " << c;
    EXPECT_LT(stats.rescored_frac(), 1.0) << "class " << c;
  }
}

}  // namespace
}  // namespace carbon::cover

#include "carbon/cover/greedy.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "carbon/common/rng.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/cover/relaxation.hpp"

namespace carbon::cover {
namespace {

Instance tiny() {
  // 4 bundles x 2 services; demands (4, 4).
  // bundle 0: cheap, covers only service 0; 1: cheap, only service 1;
  // 2: expensive, covers both; 3: overpriced duplicate of 2.
  return Instance({5.0, 5.0, 30.0, 90.0},
                  {{4, 0}, {0, 4}, {4, 4}, {4, 4}},
                  {4, 4});
}

TEST(Greedy, FindsFeasibleCover) {
  const auto r = greedy_solve(tiny(), cost_effectiveness_score);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(tiny().feasible(r.selection));
}

TEST(Greedy, CostEffectivenessPicksTheCheapPair) {
  const auto r = greedy_solve(tiny(), cost_effectiveness_score);
  ASSERT_TRUE(r.feasible);
  EXPECT_DOUBLE_EQ(r.value, 10.0);  // bundles 0 + 1
  EXPECT_EQ(r.selection[0], 1);
  EXPECT_EQ(r.selection[1], 1);
  EXPECT_EQ(r.selection[3], 0);
}

TEST(Greedy, ValueMatchesSelectionCost) {
  const Instance inst = tiny();
  const auto r = greedy_solve(inst, cost_effectiveness_score);
  EXPECT_DOUBLE_EQ(r.value, inst.selection_cost(r.selection));
}

TEST(Greedy, UncoverableInstanceReported) {
  const Instance inst({1.0, 2.0}, {{1, 0}, {2, 0}}, {1, 5});
  const auto r = greedy_solve(inst, cost_effectiveness_score);
  EXPECT_FALSE(r.feasible);
}

TEST(Greedy, RedundancyEliminationRemovesUselessBundles) {
  // A bad scorer that prefers the expensive duplicate first.
  const auto worst_first = [](const BundleFeatures& f) { return f.cost; };
  GreedyOptions keep;
  keep.eliminate_redundancy = false;
  const auto with = greedy_solve_with(tiny(), worst_first, {}, {}, {});
  const auto without = greedy_solve_with(tiny(), worst_first, {}, {}, keep);
  ASSERT_TRUE(with.feasible);
  ASSERT_TRUE(without.feasible);
  EXPECT_LE(with.value, without.value);
  // worst_first picks bundle 3 (90) which covers everything; elimination
  // cannot drop the only cover, but when both 2 and 3 get picked one goes.
}

TEST(Greedy, RedundancyEliminationKeepsFeasibility) {
  common::Rng rng(5);
  GeneratorConfig cfg;
  cfg.num_bundles = 40;
  cfg.num_services = 6;
  cfg.seed = 12;
  const Instance inst = generate(cfg);
  const auto scorer = [&rng](const BundleFeatures&) { return rng.uniform(); };
  for (int rep = 0; rep < 10; ++rep) {
    const auto r = greedy_solve_with(inst, scorer);
    ASSERT_TRUE(r.feasible);
    ASSERT_TRUE(inst.feasible(r.selection));
  }
}

TEST(Greedy, NanScoresDoNotCrashOrWin) {
  const auto nan_for_cheap = [](const BundleFeatures& f) {
    return f.cost < 10.0 ? std::numeric_limits<double>::quiet_NaN() : 1.0;
  };
  const auto r = greedy_solve_with(tiny(), nan_for_cheap);
  ASSERT_TRUE(r.feasible);
  // NaN-scored bundles lose against the finite score.
  EXPECT_EQ(r.selection[2], 1);
}

TEST(Greedy, FeaturesExposeResidualDynamics) {
  // Capture the features the scorer sees for bundle 0 across rounds.
  std::vector<double> bres_seen;
  const Instance inst = tiny();
  const auto spy = [&](const BundleFeatures& f) {
    if (f.cost == 5.0 && f.qsum == 4.0) bres_seen.push_back(f.bres);
    return cost_effectiveness_score(f);
  };
  (void)greedy_solve_with(inst, spy);
  ASSERT_GE(bres_seen.size(), 2u);
  // Outstanding demand must shrink between rounds.
  EXPECT_GT(bres_seen.front(), bres_seen.back());
  EXPECT_DOUBLE_EQ(bres_seen.front(), 8.0);  // 4 + 4 initially
}

TEST(Greedy, QcovIsCappedByResidual) {
  // One bundle over-supplies: qcov must be min(q, residual).
  const Instance inst({1.0, 1.0}, {{100}, {3}}, {5});
  double qcov0 = -1.0;
  const auto spy = [&](const BundleFeatures& f) {
    if (f.qsum == 100.0) qcov0 = f.qcov;
    return f.qcov;
  };
  (void)greedy_solve_with(inst, spy);
  EXPECT_DOUBLE_EQ(qcov0, 5.0);
}

TEST(Greedy, DualAndXbarFeaturesArriveWhenProvided) {
  const Instance inst = tiny();
  const Relaxation rel = relax(inst);
  bool saw_dual = false;
  bool saw_xbar = false;
  const auto spy = [&](const BundleFeatures& f) {
    saw_dual |= f.dual != 0.0;
    saw_xbar |= f.xbar != 0.0;
    return cost_effectiveness_score(f);
  };
  (void)greedy_solve_with(inst, spy, rel.duals, rel.relaxed_x);
  EXPECT_TRUE(saw_dual);
  EXPECT_TRUE(saw_xbar);
}

TEST(Greedy, MissingDualsReadAsZero) {
  const Instance inst = tiny();
  const auto spy = [&](const BundleFeatures& f) {
    EXPECT_EQ(f.dual, 0.0);
    EXPECT_EQ(f.xbar, 0.0);
    return 1.0;
  };
  (void)greedy_solve_with(inst, spy);
}

class GreedySweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedySweepTest, AlwaysFeasibleAndNeverBelowLpBound) {
  GeneratorConfig cfg;
  cfg.num_bundles = 50;
  cfg.num_services = 5;
  cfg.seed = GetParam();
  const Instance inst = generate(cfg);
  const Relaxation rel = relax(inst);
  ASSERT_TRUE(rel.feasible);
  const auto r = greedy_solve(inst, cost_effectiveness_score, rel.duals,
                              rel.relaxed_x);
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(inst.feasible(r.selection));
  // An integral cover can't beat the LP lower bound.
  EXPECT_GE(r.value, rel.lower_bound - 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedySweepTest,
                         ::testing::Range<std::uint64_t>(0, 12));

TEST(Greedy, DualScoreBeatsRandomOnAverage) {
  common::Rng rng(3);
  double dual_total = 0.0;
  double random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    GeneratorConfig cfg;
    cfg.num_bundles = 60;
    cfg.num_services = 6;
    cfg.seed = 100 + seed;
    const Instance inst = generate(cfg);
    const Relaxation rel = relax(inst);
    dual_total +=
        greedy_solve(inst, dual_score, rel.duals, rel.relaxed_x).value;
    random_total +=
        greedy_solve_with(inst,
                          [&rng](const BundleFeatures&) {
                            return rng.uniform();
                          },
                          rel.duals, rel.relaxed_x)
            .value;
  }
  EXPECT_LT(dual_total, random_total);
}

}  // namespace
}  // namespace carbon::cover

#include <gtest/gtest.h>

#include <vector>

#include "carbon/cover/exact.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/cover/greedy.hpp"
#include "carbon/cover/relaxation.hpp"

namespace carbon::cover {
namespace {

Instance tiny() {
  return Instance({5.0, 5.0, 30.0, 90.0},
                  {{4, 0}, {0, 4}, {4, 4}, {4, 4}},
                  {4, 4});
}

TEST(Relaxation, TinyInstanceKnownBound) {
  // LP optimum: buy bundles 0 and 1 fractionally at 1.0 each -> 10.
  const Relaxation r = relax(tiny());
  ASSERT_TRUE(r.feasible);
  EXPECT_NEAR(r.lower_bound, 10.0, 1e-7);
  ASSERT_EQ(r.duals.size(), 2u);
  ASSERT_EQ(r.relaxed_x.size(), 4u);
}

TEST(Relaxation, DualsNonNegativeAndXbarInUnitBox) {
  const Instance inst = make_paper_instance(0);
  const Relaxation r = relax(inst);
  ASSERT_TRUE(r.feasible);
  for (double d : r.duals) EXPECT_GE(d, -1e-9);
  for (double x : r.relaxed_x) {
    EXPECT_GE(x, -1e-9);
    EXPECT_LE(x, 1.0 + 1e-9);
  }
}

TEST(Relaxation, InfeasibleWhenDemandExceedsSupply) {
  const Instance inst({1.0}, {{2}}, {5});
  const Relaxation r = relax(inst);
  EXPECT_FALSE(r.feasible);
}

TEST(Relaxation, BuildLpShape) {
  const Instance inst = tiny();
  const lp::Problem p = build_relaxation_lp(inst);
  EXPECT_EQ(p.num_vars(), 4u);
  EXPECT_EQ(p.num_rows(), 2u);
  EXPECT_EQ(p.sense[0], lp::RowSense::kGreaterEqual);
  EXPECT_DOUBLE_EQ(p.upper[0], 1.0);
  EXPECT_DOUBLE_EQ(p.lower[0], 0.0);
}

TEST(Exact, SolvesTinyInstanceOptimally) {
  const ExactResult r = exact_solve(tiny());
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.proven_optimal);
  EXPECT_DOUBLE_EQ(r.value, 10.0);
  EXPECT_EQ(r.selection[0], 1);
  EXPECT_EQ(r.selection[1], 1);
}

TEST(Exact, InfeasibleInstance) {
  const Instance inst({1.0}, {{2}}, {5});
  const ExactResult r = exact_solve(inst);
  EXPECT_FALSE(r.feasible);
}

TEST(Exact, NodeBudgetCutoffStillReturnsIncumbent) {
  GeneratorConfig cfg;
  cfg.num_bundles = 30;
  cfg.num_services = 5;
  cfg.seed = 8;
  const Instance inst = generate(cfg);
  ExactOptions opts;
  opts.max_nodes = 1;
  const ExactResult r = exact_solve(inst, opts);
  ASSERT_TRUE(r.feasible);  // greedy incumbent
  EXPECT_FALSE(r.proven_optimal);
  EXPECT_TRUE(inst.feasible(r.selection));
}

/// Brute force over all 2^M selections.
double brute_force(const Instance& inst) {
  const std::size_t m = inst.num_bundles();
  double best = 1e18;
  for (std::size_t mask = 0; mask < (1ULL << m); ++mask) {
    std::vector<std::uint8_t> sel(m, 0);
    for (std::size_t j = 0; j < m; ++j) sel[j] = (mask >> j) & 1;
    if (!inst.feasible(sel)) continue;
    best = std::min(best, inst.selection_cost(sel));
  }
  return best;
}

class ExactVsBruteForceTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(ExactVsBruteForceTest, MatchesExhaustiveEnumeration) {
  GeneratorConfig cfg;
  cfg.num_bundles = 12;
  cfg.num_services = 3;
  cfg.max_quantity = 9;
  cfg.seed = GetParam();
  const Instance inst = generate(cfg);
  const double truth = brute_force(inst);
  const ExactResult r = exact_solve(inst);
  ASSERT_TRUE(r.feasible);
  ASSERT_TRUE(r.proven_optimal);
  EXPECT_NEAR(r.value, truth, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExactVsBruteForceTest,
                         ::testing::Range<std::uint64_t>(0, 10));

class BoundSandwichTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(BoundSandwichTest, LpLowerBoundSandwichesExactAndGreedy) {
  GeneratorConfig cfg;
  cfg.num_bundles = 25;
  cfg.num_services = 4;
  cfg.seed = 1000 + GetParam();
  const Instance inst = generate(cfg);
  const Relaxation rel = relax(inst);
  const ExactResult exact = exact_solve(inst);
  const SolveResult greedy =
      greedy_solve(inst, cost_effectiveness_score, rel.duals, rel.relaxed_x);
  ASSERT_TRUE(rel.feasible);
  ASSERT_TRUE(exact.feasible && exact.proven_optimal);
  ASSERT_TRUE(greedy.feasible);
  // LB <= OPT <= greedy.
  EXPECT_LE(rel.lower_bound, exact.value + 1e-6);
  EXPECT_LE(exact.value, greedy.value + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BoundSandwichTest,
                         ::testing::Range<std::uint64_t>(0, 8));

}  // namespace
}  // namespace carbon::cover

#include "carbon/cover/orlib_io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "carbon/cover/generator.hpp"
#include "common/temp_dir.hpp"

namespace carbon::cover {
namespace {

TEST(OrlibIo, RoundtripPreservesEverything) {
  GeneratorConfig cfg;
  cfg.num_bundles = 23;
  cfg.num_services = 7;
  cfg.seed = 77;
  const Instance original = generate(cfg);

  std::stringstream buffer;
  write_orlib(buffer, original);
  const Instance loaded = read_orlib(buffer);

  ASSERT_EQ(loaded.num_bundles(), original.num_bundles());
  ASSERT_EQ(loaded.num_services(), original.num_services());
  for (std::size_t j = 0; j < original.num_bundles(); ++j) {
    ASSERT_NEAR(loaded.cost(j), original.cost(j), 1e-9);
    for (std::size_t k = 0; k < original.num_services(); ++k) {
      ASSERT_EQ(loaded.quantity(j, k), original.quantity(j, k));
    }
  }
  for (std::size_t k = 0; k < original.num_services(); ++k) {
    ASSERT_EQ(loaded.demand(k), original.demand(k));
  }
}

TEST(OrlibIo, ParsesHandWrittenFile) {
  std::stringstream in(
      "2 3\n"
      "1.5 2.5\n"
      "1 0\n"
      "2 2\n"
      "0 3\n"
      "1 2 3\n");
  const Instance inst = read_orlib(in);
  EXPECT_EQ(inst.num_bundles(), 2u);
  EXPECT_EQ(inst.num_services(), 3u);
  EXPECT_DOUBLE_EQ(inst.cost(0), 1.5);
  EXPECT_EQ(inst.quantity(0, 0), 1);  // service-major rows in the file
  EXPECT_EQ(inst.quantity(1, 1), 2);
  EXPECT_EQ(inst.quantity(1, 2), 3);
  EXPECT_EQ(inst.demand(2), 3);
}

TEST(OrlibIo, MissingHeaderThrows) {
  std::stringstream in("");
  EXPECT_THROW((void)read_orlib(in), std::runtime_error);
}

TEST(OrlibIo, TruncatedCostsThrows) {
  std::stringstream in("3 2\n1.0 2.0\n");
  EXPECT_THROW((void)read_orlib(in), std::runtime_error);
}

TEST(OrlibIo, TruncatedMatrixThrows) {
  std::stringstream in("2 2\n1 2\n1 1\n");
  EXPECT_THROW((void)read_orlib(in), std::runtime_error);
}

TEST(OrlibIo, NegativeCoefficientThrows) {
  std::stringstream in("1 1\n1.0\n-5\n1\n");
  EXPECT_THROW((void)read_orlib(in), std::runtime_error);
}

TEST(OrlibIo, NegativeDemandThrows) {
  std::stringstream in("1 1\n1.0\n5\n-1\n");
  EXPECT_THROW((void)read_orlib(in), std::runtime_error);
}

TEST(OrlibIo, ZeroDimensionsThrow) {
  std::stringstream in("0 5\n");
  EXPECT_THROW((void)read_orlib(in), std::runtime_error);
}

TEST(OrlibIo, ImplausibleDimensionsThrow) {
  // A fuzzed/corrupted header must not turn into a multi-terabyte
  // allocation attempt.
  std::stringstream big_m("99999999999 2\n");
  EXPECT_THROW((void)read_orlib(big_m), std::runtime_error);
  std::stringstream big_n("2 99999999\n");
  EXPECT_THROW((void)read_orlib(big_n), std::runtime_error);
}

TEST(OrlibIo, NonNumericTokensThrow) {
  std::stringstream header("two 3\n");
  EXPECT_THROW((void)read_orlib(header), std::runtime_error);
  std::stringstream cost("1 1\nexpensive\n5\n1\n");
  EXPECT_THROW((void)read_orlib(cost), std::runtime_error);
  std::stringstream coeff("1 1\n1.0\nfive\n1\n");
  EXPECT_THROW((void)read_orlib(coeff), std::runtime_error);
  std::stringstream demand("1 1\n1.0\n5\nlots\n");
  EXPECT_THROW((void)read_orlib(demand), std::runtime_error);
}

TEST(OrlibIo, NonFiniteCostsThrow) {
  // "inf"/"nan" tokens either fail numeric extraction or parse to a
  // non-finite double; both must reject, never build an Instance whose
  // greedy scores are NaN.
  for (const char* tok : {"inf", "-inf", "nan", "1e999"}) {
    std::stringstream in(std::string("2 1\n1.0 ") + tok + "\n1 1\n1\n");
    EXPECT_THROW((void)read_orlib(in), std::runtime_error) << tok;
  }
}

TEST(OrlibIo, TruncatedDemandsThrow) {
  std::stringstream in("2 2\n1 2\n1 1\n1 1\n3\n");
  EXPECT_THROW((void)read_orlib(in), std::runtime_error);
}

TEST(OrlibIo, FileRoundtrip) {
  GeneratorConfig cfg;
  cfg.num_bundles = 8;
  cfg.num_services = 3;
  const Instance original = generate(cfg);
  const std::string path = carbon::test::test_temp_dir() + "roundtrip.txt";
  save_orlib(path, original);
  const Instance loaded = load_orlib(path);
  EXPECT_EQ(loaded.num_bundles(), original.num_bundles());
  EXPECT_EQ(loaded.demand(0), original.demand(0));
}

TEST(OrlibIo, MissingFileThrows) {
  EXPECT_THROW((void)load_orlib("/nonexistent/path/file.txt"),
               std::ios_base::failure);
}

}  // namespace
}  // namespace carbon::cover

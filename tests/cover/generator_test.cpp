#include "carbon/cover/generator.hpp"

#include <gtest/gtest.h>

namespace carbon::cover {
namespace {

TEST(Generator, DeterministicForSeed) {
  GeneratorConfig cfg;
  cfg.num_bundles = 30;
  cfg.num_services = 4;
  cfg.seed = 9;
  const Instance a = generate(cfg);
  const Instance b = generate(cfg);
  ASSERT_EQ(a.num_bundles(), b.num_bundles());
  for (std::size_t j = 0; j < a.num_bundles(); ++j) {
    ASSERT_DOUBLE_EQ(a.cost(j), b.cost(j));
    for (std::size_t k = 0; k < a.num_services(); ++k) {
      ASSERT_EQ(a.quantity(j, k), b.quantity(j, k));
    }
  }
}

TEST(Generator, DifferentSeedsDiffer) {
  GeneratorConfig cfg;
  cfg.num_bundles = 30;
  cfg.num_services = 4;
  cfg.seed = 1;
  const Instance a = generate(cfg);
  cfg.seed = 2;
  const Instance b = generate(cfg);
  bool any_diff = false;
  for (std::size_t j = 0; j < a.num_bundles() && !any_diff; ++j) {
    any_diff = a.cost(j) != b.cost(j);
  }
  EXPECT_TRUE(any_diff);
}

TEST(Generator, AlwaysCoverable) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    GeneratorConfig cfg;
    cfg.num_bundles = 25;
    cfg.num_services = 6;
    cfg.density = 0.3;
    cfg.seed = seed;
    EXPECT_TRUE(generate(cfg).coverable()) << "seed " << seed;
  }
}

TEST(Generator, QuantitiesWithinConfiguredRange) {
  GeneratorConfig cfg;
  cfg.num_bundles = 50;
  cfg.num_services = 5;
  cfg.max_quantity = 17;
  const Instance inst = generate(cfg);
  for (std::size_t j = 0; j < inst.num_bundles(); ++j) {
    for (std::size_t k = 0; k < inst.num_services(); ++k) {
      ASSERT_GE(inst.quantity(j, k), 0);
      ASSERT_LE(inst.quantity(j, k), 17);
    }
  }
}

TEST(Generator, TightnessScalesDemand) {
  GeneratorConfig loose;
  loose.num_bundles = 60;
  loose.num_services = 4;
  loose.tightness = 0.1;
  loose.seed = 5;
  GeneratorConfig tight = loose;
  tight.tightness = 0.6;
  const Instance a = generate(loose);
  const Instance b = generate(tight);
  // Same supply (same seed), different demand scale.
  long long da = 0;
  long long db = 0;
  for (std::size_t k = 0; k < a.num_services(); ++k) {
    da += a.demand(k);
    db += b.demand(k);
  }
  EXPECT_GT(db, 3 * da);
}

TEST(Generator, EveryServiceHasAtLeastTwoSuppliers) {
  GeneratorConfig cfg;
  cfg.num_bundles = 10;
  cfg.num_services = 8;
  cfg.density = 0.05;  // so sparse the backfill path must trigger
  cfg.seed = 3;
  const Instance inst = generate(cfg);
  for (std::size_t k = 0; k < inst.num_services(); ++k) {
    EXPECT_GE(inst.suppliers(k).size(), 2u) << "service " << k;
  }
}

TEST(Generator, CostsArePositive) {
  GeneratorConfig cfg;
  cfg.num_bundles = 40;
  cfg.num_services = 3;
  const Instance inst = generate(cfg);
  for (std::size_t j = 0; j < inst.num_bundles(); ++j) {
    EXPECT_GT(inst.cost(j), 0.0);
  }
}

TEST(Generator, RejectsBadConfig) {
  GeneratorConfig cfg;
  cfg.num_bundles = 0;
  EXPECT_THROW((void)generate(cfg), std::invalid_argument);
  cfg.num_bundles = 10;
  cfg.tightness = 0.0;
  EXPECT_THROW((void)generate(cfg), std::invalid_argument);
  cfg.tightness = 1.5;
  EXPECT_THROW((void)generate(cfg), std::invalid_argument);
}

TEST(Generator, PaperClassesMatchTheEvaluationSection) {
  const auto& classes = paper_classes();
  ASSERT_EQ(classes.size(), 9u);
  EXPECT_EQ(classes[0].num_bundles, 100u);
  EXPECT_EQ(classes[0].num_services, 5u);
  EXPECT_EQ(classes[8].num_bundles, 500u);
  EXPECT_EQ(classes[8].num_services, 30u);
}

TEST(Generator, MakePaperInstanceDimensions) {
  const Instance inst = make_paper_instance(3);  // 250 x 5
  EXPECT_EQ(inst.num_bundles(), 250u);
  EXPECT_EQ(inst.num_services(), 5u);
  EXPECT_THROW((void)make_paper_instance(9), std::out_of_range);
}

TEST(Generator, PaperInstanceRunsAreDistinct) {
  const Instance a = make_paper_instance(0, 0);
  const Instance b = make_paper_instance(0, 1);
  bool differ = false;
  for (std::size_t j = 0; j < a.num_bundles() && !differ; ++j) {
    differ = a.cost(j) != b.cost(j);
  }
  EXPECT_TRUE(differ);
}

}  // namespace
}  // namespace carbon::cover

// Equivalence tests for the sort-based static-scorer greedy fast path.
#include <gtest/gtest.h>

#include "carbon/bcpop/evaluator.hpp"
#include "carbon/common/rng.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/cover/greedy.hpp"
#include "carbon/cover/relaxation.hpp"
#include "carbon/gp/generate.hpp"
#include "carbon/gp/scoring.hpp"

namespace carbon::cover {
namespace {

class StaticGreedyEquivalenceTest
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StaticGreedyEquivalenceTest, MatchesArgmaxGreedyForStaticScores) {
  GeneratorConfig cfg;
  cfg.num_bundles = 60;
  cfg.num_services = 6;
  cfg.seed = GetParam();
  const Instance inst = generate(cfg);
  const Relaxation rel = relax(inst);
  common::Rng rng(GetParam() * 7 + 1);

  for (int rep = 0; rep < 10; ++rep) {
    // Random static scores (one per bundle, residual-independent).
    std::vector<double> scores(inst.num_bundles());
    for (double& s : scores) s = rng.uniform(-10.0, 10.0);

    const SolveResult fast = greedy_solve_static(inst, scores);
    const SolveResult slow = greedy_solve_with(
        inst,
        [&](const BundleFeatures& f) {
          // Recover the bundle identity through its unique static features
          // is impossible, so instead drive the slow path with an index
          // captured via a side table keyed by (cost, qsum): simpler — use
          // a per-call cursorless exact approach: score by matching cost.
          // To keep this airtight we instead compare via the evaluator path
          // below; here use a deterministic function of static features.
          return 3.0 * f.cost - 2.0 * f.qsum + f.dual + 5.0 * f.xbar;
        },
        rel.duals, rel.relaxed_x);

    // Same function evaluated statically.
    std::vector<double> fn_scores(inst.num_bundles());
    for (std::size_t j = 0; j < inst.num_bundles(); ++j) {
      double qsum = 0.0;
      double dual = 0.0;
      const auto row = inst.bundle(j);
      for (std::size_t k = 0; k < inst.num_services(); ++k) {
        qsum += row[k];
        dual += rel.duals[k] * row[k];
      }
      fn_scores[j] =
          3.0 * inst.cost(j) - 2.0 * qsum + dual + 5.0 * rel.relaxed_x[j];
    }
    const SolveResult fast_fn = greedy_solve_static(inst, fn_scores);
    ASSERT_EQ(fast_fn.feasible, slow.feasible);
    ASSERT_EQ(fast_fn.selection, slow.selection);
    ASSERT_DOUBLE_EQ(fast_fn.value, slow.value);

    // And the random-score fast result must at least be a feasible cover.
    ASSERT_TRUE(fast.feasible);
    ASSERT_TRUE(inst.feasible(fast.selection));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StaticGreedyEquivalenceTest,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(StaticGreedy, RejectsWrongScoreCount) {
  GeneratorConfig cfg;
  cfg.num_bundles = 5;
  cfg.num_services = 2;
  const Instance inst = generate(cfg);
  const std::vector<double> too_few(3, 0.0);
  EXPECT_THROW((void)greedy_solve_static(inst, too_few),
               std::invalid_argument);
}

TEST(StaticGreedy, UncoverableInstanceReported) {
  const Instance inst({1.0}, {{1}}, {5});
  const std::vector<double> scores = {1.0};
  EXPECT_FALSE(greedy_solve_static(inst, scores).feasible);
}

TEST(StaticGreedy, NanScoresSortLast) {
  const Instance inst({1.0, 2.0},
                      {{5}, {5}},
                      {5});
  const std::vector<double> scores = {
      std::numeric_limits<double>::quiet_NaN(), 1.0};
  const SolveResult r = greedy_solve_static(inst, scores);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.selection[1], 1);
  EXPECT_EQ(r.selection[0], 0);
}

TEST(IsStaticHeuristic, DetectsDynamicTerminals) {
  using gp::Terminal;
  using gp::Tree;
  EXPECT_TRUE(gp::is_static_heuristic(Tree::terminal(Terminal::kCost)));
  EXPECT_TRUE(gp::is_static_heuristic(
      Tree::apply(gp::OpCode::kDiv, Tree::terminal(Terminal::kDual),
                  Tree::terminal(Terminal::kXbar))));
  EXPECT_FALSE(gp::is_static_heuristic(Tree::terminal(Terminal::kQcov)));
  EXPECT_FALSE(gp::is_static_heuristic(
      Tree::apply(gp::OpCode::kAdd, Tree::terminal(Terminal::kCost),
                  Tree::terminal(Terminal::kBres))));
}

TEST(UsesTerminal, WalksAllNodes) {
  using gp::Terminal;
  using gp::Tree;
  const Tree t = gp::parse("(add (mul COST QCOV) (div DUAL 3.5))");
  EXPECT_TRUE(t.uses_terminal(Terminal::kCost));
  EXPECT_TRUE(t.uses_terminal(Terminal::kQcov));
  EXPECT_TRUE(t.uses_terminal(Terminal::kDual));
  EXPECT_FALSE(t.uses_terminal(Terminal::kBres));
  EXPECT_FALSE(t.uses_terminal(Terminal::kXbar));
}

TEST(EvaluatorFastPath, StaticAndDynamicTreePathsAgree) {
  // A static tree evaluated through the Evaluator must produce the exact
  // result of forcing it down the generic (dynamic) greedy path.
  cover::GeneratorConfig cfg;
  cfg.num_bundles = 40;
  cfg.num_services = 5;
  cfg.seed = 9;
  const bcpop::Instance market(generate(cfg), 4);
  bcpop::Evaluator eval(market);
  common::Rng rng(2);

  for (int rep = 0; rep < 20; ++rep) {
    gp::GenerateConfig gen;
    const gp::Tree tree = gp::generate_ramped(rng, gen);
    if (!gp::is_static_heuristic(tree)) continue;
    const auto pricing = ea::random_real_vector(rng, market.price_bounds());
    const auto fast = eval.evaluate_with_heuristic(pricing, tree);
    // Forced generic path via the type-erased score function.
    const auto slow =
        eval.evaluate_with_score(pricing, gp::make_score_function(tree));
    ASSERT_EQ(fast.selection, slow.selection) << tree.to_string();
    ASSERT_DOUBLE_EQ(fast.ll_objective, slow.ll_objective);
    ASSERT_DOUBLE_EQ(fast.ul_objective, slow.ul_objective);
    ASSERT_DOUBLE_EQ(fast.gap_percent, slow.gap_percent);
  }
}

}  // namespace
}  // namespace carbon::cover

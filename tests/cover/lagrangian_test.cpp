#include "carbon/cover/lagrangian.hpp"

#include <gtest/gtest.h>

#include "carbon/cover/exact.hpp"
#include "carbon/cover/generator.hpp"
#include "carbon/cover/greedy.hpp"
#include "carbon/cover/relaxation.hpp"

namespace carbon::cover {
namespace {

Instance tiny() {
  return Instance({5.0, 5.0, 30.0, 90.0},
                  {{4, 0}, {0, 4}, {4, 4}, {4, 4}},
                  {4, 4});
}

TEST(Lagrangian, BoundsTinyInstance) {
  const Instance inst = tiny();
  const auto greedy = greedy_solve(inst, cost_effectiveness_score);
  const LagrangianResult r = lagrangian_bound(inst, greedy.value);
  // Valid lower bound on the optimum (10.0), approaching the LP bound (10).
  EXPECT_LE(r.lower_bound, 10.0 + 1e-6);
  EXPECT_GT(r.lower_bound, 5.0);  // converged meaningfully
  for (double l : r.multipliers) EXPECT_GE(l, 0.0);
}

TEST(Lagrangian, DeterministicAndWithinIterationBudget) {
  const Instance inst = tiny();
  LagrangianOptions opts;
  opts.max_iterations = 50;
  const auto a = lagrangian_bound(inst, 20.0, opts);
  const auto b = lagrangian_bound(inst, 20.0, opts);
  EXPECT_DOUBLE_EQ(a.lower_bound, b.lower_bound);
  EXPECT_LE(a.iterations, 50u);
}

TEST(Lagrangian, RejectsNonFiniteUpperBound) {
  EXPECT_THROW((void)lagrangian_bound(
                   tiny(), std::numeric_limits<double>::infinity()),
               std::invalid_argument);
}

TEST(Lagrangian, ZeroMultipliersGiveTrivialStart) {
  // With λ = 0 the inner problem buys nothing and L(0) = 0; the method must
  // improve on that for any instance with positive demand.
  const Instance inst = tiny();
  const LagrangianResult r = lagrangian_bound(inst, 15.0);
  EXPECT_GT(r.lower_bound, 0.0);
}

class LagrangianSweepTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LagrangianSweepTest, ValidLowerBoundNearLpBound) {
  GeneratorConfig cfg;
  cfg.num_bundles = 40;
  cfg.num_services = 5;
  cfg.seed = 500 + GetParam();
  const Instance inst = generate(cfg);

  const Relaxation lp = relax(inst);
  ASSERT_TRUE(lp.feasible);
  const auto greedy =
      greedy_solve(inst, cost_effectiveness_score, lp.duals, lp.relaxed_x);
  ASSERT_TRUE(greedy.feasible);

  LagrangianOptions opts;
  opts.max_iterations = 400;
  const LagrangianResult lag = lagrangian_bound(inst, greedy.value, opts);

  // Validity: never above the true optimum (== LP bound is itself <= OPT;
  // by the integrality property the Lagrangian dual optimum equals the LP
  // bound, so the achieved value must be <= LP bound + tolerance).
  EXPECT_LE(lag.lower_bound, lp.lower_bound * (1.0 + 1e-6) + 1e-6);
  // Convergence: within a few percent of the LP bound.
  EXPECT_GE(lag.lower_bound, 0.90 * lp.lower_bound);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LagrangianSweepTest,
                         ::testing::Range<std::uint64_t>(0, 8));

TEST(Lagrangian, BoundNeverExceedsExactOptimum) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    GeneratorConfig cfg;
    cfg.num_bundles = 20;
    cfg.num_services = 4;
    cfg.seed = 900 + seed;
    const Instance inst = generate(cfg);
    const auto exact = exact_solve(inst);
    ASSERT_TRUE(exact.feasible && exact.proven_optimal);
    const auto greedy = greedy_solve(inst, cost_effectiveness_score);
    const auto lag = lagrangian_bound(inst, greedy.value);
    EXPECT_LE(lag.lower_bound, exact.value + 1e-6) << "seed " << seed;
  }
}

}  // namespace
}  // namespace carbon::cover

#include "carbon/cover/instance.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace carbon::cover {
namespace {

Instance tiny() {
  // 3 bundles x 2 services.
  return Instance({10.0, 20.0, 15.0},
                  {{2, 0}, {1, 3}, {0, 2}},
                  {2, 3});
}

TEST(Instance, Dimensions) {
  const Instance inst = tiny();
  EXPECT_EQ(inst.num_bundles(), 3u);
  EXPECT_EQ(inst.num_services(), 2u);
  EXPECT_DOUBLE_EQ(inst.cost(1), 20.0);
  EXPECT_EQ(inst.demand(1), 3);
  EXPECT_EQ(inst.quantity(1, 1), 3);
  EXPECT_EQ(inst.quantity(2, 0), 0);
}

TEST(Instance, BundleRowSpan) {
  const Instance inst = tiny();
  const auto row = inst.bundle(1);
  ASSERT_EQ(row.size(), 2u);
  EXPECT_EQ(row[0], 1);
  EXPECT_EQ(row[1], 3);
}

TEST(Instance, TotalSupplyAndCoverable) {
  const Instance inst = tiny();
  EXPECT_EQ(inst.total_supply(0), 3);
  EXPECT_EQ(inst.total_supply(1), 5);
  EXPECT_TRUE(inst.coverable());

  const Instance bad({1.0}, {{1, 0}}, {1, 1});
  EXPECT_FALSE(bad.coverable());
}

TEST(Instance, FeasibilityOfSelections) {
  const Instance inst = tiny();
  const std::vector<std::uint8_t> all = {1, 1, 1};
  const std::vector<std::uint8_t> first_two = {1, 1, 0};
  const std::vector<std::uint8_t> none = {0, 0, 0};
  EXPECT_TRUE(inst.feasible(all));
  EXPECT_TRUE(inst.feasible(first_two));  // supply (3,3) >= (2,3)
  EXPECT_FALSE(inst.feasible(none));
  EXPECT_FALSE(inst.feasible(std::vector<std::uint8_t>{0, 1, 0}));
}

TEST(Instance, FeasibleRejectsWrongSize) {
  const Instance inst = tiny();
  EXPECT_FALSE(inst.feasible(std::vector<std::uint8_t>{1, 1}));
}

TEST(Instance, SelectionCost) {
  const Instance inst = tiny();
  EXPECT_DOUBLE_EQ(inst.selection_cost(std::vector<std::uint8_t>{1, 0, 1}),
                   25.0);
  EXPECT_DOUBLE_EQ(inst.selection_cost(std::vector<std::uint8_t>{0, 0, 0}),
                   0.0);
}

TEST(Instance, ResidualDemandClampsAtZero) {
  const Instance inst = tiny();
  const auto r0 = inst.residual_demand(std::vector<std::uint8_t>{0, 0, 0});
  EXPECT_EQ(r0, (std::vector<int>{2, 3}));
  const auto r1 = inst.residual_demand(std::vector<std::uint8_t>{1, 0, 1});
  EXPECT_EQ(r1, (std::vector<int>{0, 1}));
  const auto r2 = inst.residual_demand(std::vector<std::uint8_t>{1, 1, 1});
  EXPECT_EQ(r2, (std::vector<int>{0, 0}));
}

TEST(Instance, SetCostOnlyAffectsCosts) {
  Instance inst = tiny();
  inst.set_cost(0, 99.0);
  EXPECT_DOUBLE_EQ(inst.cost(0), 99.0);
  EXPECT_EQ(inst.quantity(0, 0), 2);
}

TEST(Instance, SupplierIndexMatchesMatrix) {
  const Instance inst = tiny();
  // Service 0 is supplied by bundles 0 (q=2) and 1 (q=1).
  const auto idx0 = inst.suppliers(0);
  const auto q0 = inst.supplier_quantities(0);
  ASSERT_EQ(idx0.size(), 2u);
  EXPECT_EQ(idx0[0], 0u);
  EXPECT_EQ(q0[0], 2);
  EXPECT_EQ(idx0[1], 1u);
  EXPECT_EQ(q0[1], 1);
  // Service 1: bundles 1 (q=3) and 2 (q=2).
  const auto idx1 = inst.suppliers(1);
  ASSERT_EQ(idx1.size(), 2u);
  EXPECT_EQ(idx1[0], 1u);
  EXPECT_EQ(idx1[1], 2u);
}

TEST(Instance, ConstructorValidation) {
  EXPECT_THROW(Instance({1.0, 2.0}, {{1}}, {1}), std::invalid_argument);
  EXPECT_THROW(Instance({1.0}, {{1, 2}}, {1}), std::invalid_argument);
  EXPECT_THROW(Instance({1.0}, {{-1}}, {1}), std::invalid_argument);
  EXPECT_THROW(Instance({1.0}, {{1}}, {-1}), std::invalid_argument);
}

TEST(Instance, DescribeMentionsDimensions) {
  const Instance inst = tiny();
  const std::string d = inst.describe();
  EXPECT_NE(d.find("3 bundles"), std::string::npos);
  EXPECT_NE(d.find("2 services"), std::string::npos);
}

}  // namespace
}  // namespace carbon::cover
